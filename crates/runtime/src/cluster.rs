//! Elastic scale-out cluster serving: a feature-sharded multi-node
//! runtime that survives node failures, rebalances live, and prunes its
//! scatter to the nodes a batch actually needs.
//!
//! A single [`Engine`](crate::Engine) tops out at one machine's worker
//! pool and one MP-Cache. This module serves the same traces across a
//! *changing* set of simulated nodes:
//!
//! * a **consistent-hash feature-shard router**
//!   ([`FeatureShardPlan`] over [`mprec_core::ring::HashRing`])
//!   partitions the sparse-feature space — each node owns the embedding
//!   tables, DHE stacks, and `ShardedMpCache` state of its features
//!   only. Node churn ([`ClusterConfig::churn`], or the
//!   [`Cluster::fail_node`] / [`Cluster::add_node`] schedule builders)
//!   re-owns only the ~K/N remapped features, computed incrementally
//!   through the ring's remap-diff API ([`HashRing::diff`] +
//!   [`FeatureShardPlan::apply`]);
//! * a **front-end** micro-batches and routes queries exactly like the
//!   single-node engine (Algorithm 2 in deterministic virtual time, via
//!   the shared [`mprec_core::scheduler::select_mapping`] rule), then
//!   **scatters** each batch to the *pruned* target set of the routed
//!   path — only the nodes whose per-node cache state the path touches,
//!   plus one designated executor for replicated table-only work;
//! * a **merger** gathers the partial pools, sums them, runs the top
//!   MLP, and records measured latencies into a mergeable histogram.
//!
//! # Virtual-time accounting
//!
//! Routing runs on the trace's virtual clock and is a pure function of
//! `(config, seed)`:
//!
//! * each path's **execution latency** comes from a per-epoch profile
//!   charging the *slowest shard* — the max over the path's scatter
//!   targets of that node's per-sample embedding FLOPs scaled by its
//!   capacity budget ([`ClusterConfig::node_capacity_gflops`]) — plus
//!   the shared top-MLP merge cost and a per-batch network overhead of
//!   0, 1, or 2 × [`ClusterConfig::net_overhead_us`] for colocated,
//!   single-target (pruned), and fan-out scatters respectively;
//! * each node carries a **virtual backlog**: a dispatched batch
//!   occupies every scatter target until the batch's merge completes,
//!   so an overloaded shard back-pressures Algorithm 2 toward cheaper
//!   paths (table/cache) instead of queueing unboundedly;
//! * a **churn event** takes effect at the first batch flush at or
//!   after its timestamp. A batch in flight to a node that fails is
//!   **retried**: it re-executes under the post-failure plan starting
//!   at the failure instant, and its queries are charged the *full*
//!   latency — original attempt plus retry leg — in the virtual
//!   histogram and SLA accounting.
//!
//! The replay simulator (`mprec_serving::replay::replay_cluster`)
//! re-implements this contract independently; `tests/sim_vs_runtime.rs`
//! pins exact agreement, including across node churn.
//!
//! # Examples
//!
//! A 3-node cluster that loses a node mid-trace and admits a fresh one:
//!
//! ```
//! use mprec_runtime::{Cluster, ClusterConfig, RuntimeModelConfig};
//! use mprec_data::query::QueryTraceConfig;
//!
//! let mut cluster = Cluster::new(ClusterConfig {
//!     nodes: 3,
//!     trace: QueryTraceConfig {
//!         num_queries: 150,
//!         mean_size: 4.0,
//!         max_size: 16,
//!         qps: 5_000.0,
//!         ..QueryTraceConfig::default()
//!     },
//!     model: RuntimeModelConfig {
//!         sparse_features: 4,
//!         rows_per_feature: 300,
//!         emb_dim: 4,
//!         dhe_k: 8,
//!         dhe_dnn: 8,
//!         dhe_h: 1,
//!         top_hidden: vec![8],
//!         decoder_centroids: 0,
//!         profile_accesses: 500,
//!         ..RuntimeModelConfig::default()
//!     },
//!     ..ClusterConfig::default()
//! })?;
//! cluster.fail_node(2, 10_000.0)?; // node 2 dies 10ms in
//! cluster.add_node(3, 20_000.0)?; // a cold node joins at 20ms
//! assert_eq!(cluster.epochs().len(), 3);
//!
//! let report = cluster.serve()?;
//! assert_eq!(report.outcome.completed, 150);
//! // The failed node owns nothing in the final epoch.
//! assert!(cluster.epochs()[2].plan.features_of(2).is_empty());
//! # Ok::<(), mprec_runtime::RuntimeError>(())
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::AtomicUsize;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mprec_core::mpcache::CacheStats;
use mprec_core::planner::MappingSet;
use mprec_core::ring::{HashRing, DEFAULT_VNODES};
use mprec_core::scheduler::{class_pressure_mask, select_mapping};
use mprec_data::query::{Query, QueryTraceConfig};
use mprec_data::scenario::{self, ChaosConfig, ChurnAction, ChurnEvent, FaultPlan, LoadScenario};
use mprec_data::traffic::{SlaClass, TrafficConfig};
use mprec_nn::MlpScratch;
use mprec_serving::{PathUsage, ServingOutcome};
use mprec_tensor::Matrix;
use mprec_trace::{
    EventRing, MetricId, MetricsRegistry, MetricsSnapshot, TraceConfig, TraceEvent, TraceRecording,
};
use parking_lot::{Condvar, Mutex};

pub use mprec_core::ring::FeatureShardPlan;

use crate::engine::{
    build_path_mappings, degrade_rank, PathAccuracy, RoutePolicy, TenantReport, TenantTally,
};
use crate::histogram::{LatencyHistogram, DEFAULT_SUBS_PER_OCTAVE};
use crate::model::{BatchResult, PathKind, RuntimeModel, RuntimeModelConfig, ScratchSpace};
use crate::queue::BoundedQueue;
use crate::{Result, RuntimeError};

/// Full cluster configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of initial nodes (ids `0..nodes`), each with its own
    /// worker pool, model replica, and cache state.
    pub nodes: usize,
    /// Worker threads per node.
    pub workers_per_node: usize,
    /// Virtual points per node on the consistent-hash ring.
    pub vnodes: usize,
    /// MP-Cache shard count *inside* each node.
    pub cache_shards: usize,
    /// Query trace shape (sizes, arrivals, QPS).
    pub trace: QueryTraceConfig,
    /// Load scenario reshaping arrivals / the hot-key set.
    pub scenario: LoadScenario,
    /// Node-churn schedule on the virtual-time axis: failures and joins
    /// in strictly increasing time order (see
    /// [`mprec_data::scenario::node_churn`] for the canonical one).
    /// Each event starts a new [`ClusterEpoch`].
    pub churn: Vec<ChurnEvent>,
    /// Per-node-id virtual compute budgets (GFLOP/s) enforced by the
    /// router's backlog accounting; indexed by node id, with missing or
    /// non-positive entries defaulting to
    /// [`ClusterConfig::virtual_gflops`]. An undersized node inflates
    /// every path profile whose scatter targets it, back-pressuring
    /// routing toward cheaper paths.
    pub node_capacity_gflops: Vec<f64>,
    /// Seed for the trace, the model weights, and per-query ID draws.
    pub seed: u64,
    /// SLA latency target in microseconds.
    pub sla_us: f64,
    /// Micro-batch sample budget.
    pub max_batch_samples: usize,
    /// Micro-batch deadline (µs after the oldest pending arrival).
    pub max_batch_wait_us: f64,
    /// Per-node work-queue depth (0 = `4 * workers_per_node`).
    pub queue_depth: usize,
    /// Pace ingress to the trace's arrival times (open-loop) instead of
    /// feeding as fast as the cluster drains (throughput mode).
    pub pace_ingress: bool,
    /// Path-selection policy.
    pub route: RoutePolicy,
    /// Default virtual compute rate per node (GFLOP/s) for the
    /// critical-path latency profiles.
    pub virtual_gflops: f64,
    /// Fixed virtual per-batch dispatch overhead (µs).
    pub dispatch_overhead_us: f64,
    /// Virtual network overhead per hop (µs): a fan-out scatter/gather
    /// charges two hops per batch, a shard-pruned single-target batch
    /// one, a single-node colocated cluster zero.
    pub net_overhead_us: f64,
    /// Virtual per-sample penalty (µs) charged to a path whose scatter
    /// targets a node serving DHE features with cold RAM tiers — i.e. in
    /// the epoch right after that node joined, when its lookups are
    /// served by the warm-started persistent disk tier instead of RAM.
    /// The penalty is folded into the epoch's latency profiles, so
    /// Algorithm 2 routes around the cold tier and the twin replay
    /// (which receives the same profiles) agrees exactly. 0 disables the
    /// charge.
    pub disk_hit_us: f64,
    /// Per-path accuracy book.
    pub accuracy: PathAccuracy,
    /// Per-node latency histogram resolution (sub-buckets per octave);
    /// the merged report adopts it.
    pub histogram_subs: u32,
    /// Flight-recorder config: when enabled, the dispatcher, every node
    /// worker, and the merger each record the query lifecycle into a
    /// preallocated per-track [`EventRing`], assembled into
    /// [`ClusterReport::trace`]. Off by default (zero overhead beyond
    /// one branch per would-be event).
    pub recorder: TraceConfig,
    /// Deterministic fault schedule on the virtual-time axis: straggler
    /// windows, scatter-leg losses, and unannounced stalls, injected
    /// into leg resolution without the epoch machinery knowing. Empty
    /// (no faults) by default.
    pub faults: FaultPlan,
    /// Lifecycle-hardening knobs: per-leg virtual timeouts, bounded
    /// backoff retries, hedged scatter, and the brownout ladder. The
    /// default is fully inert — `timeout_mult == 0` preserves the
    /// legacy single-attempt leg accounting bit for bit.
    pub chaos: ChaosConfig,
    /// Shard-migration strategy: stop-the-world barrier swaps (the
    /// fully inert default) versus incremental streaming handoff,
    /// cold-tier penalty drain, and the adaptive partial-migration
    /// planner.
    pub rebalance: RebalanceConfig,
    /// Multi-tenant open-loop traffic engine. When enabled (at least
    /// one tenant), the cluster serves the tenanted trace it generates
    /// instead of `trace`/`scenario`; each tenant batches on its own
    /// deadline axis, routes under its own [`SlaClass`], and is
    /// accounted in [`ClusterReport::tenants`]. Empty (the default)
    /// keeps the legacy single-stream trace bit for bit.
    pub tenants: TrafficConfig,
    /// Model shape (replicated weights, sharded execution).
    pub model: RuntimeModelConfig,
}

/// How the cluster moves shards when membership (or load) changes.
///
/// The default reproduces the legacy stop-the-world behaviour bit for
/// bit: every churn event is a single quiescence-barrier epoch swap and
/// a joiner's [`ClusterConfig::disk_hit_us`] penalty is never lifted.
/// Turning the knobs on replaces join rebalances with an incremental
/// dual-ownership handoff ([`FeatureShardPlan::begin_handoff`]) whose
/// chunks flip one at a time while traffic flows, drains the cold-tier
/// penalty once the shipped disk records have promoted, and arms a
/// dispatcher-side planner that migrates hot features off the most
/// backlogged node under load skew.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// Number of incremental chunks a join's remap diff is streamed in
    /// (`0` = legacy single barrier swap). Each chunk is one plan flip:
    /// the old owners ship the chunk's warm entries — dynamic *and*
    /// disk tier — then ownership flips, so reads before the flip keep
    /// hitting the old owner's warm cache and the joiner never serves a
    /// feature it has no state for.
    pub streaming_chunks: usize,
    /// Virtual-time spacing between consecutive chunk flips (µs). The
    /// schedule is compressed automatically so every flip (and the
    /// drain, if any) lands strictly before the next churn event.
    pub chunk_interval_us: f64,
    /// Virtual time after a join's last plan flip at which the joiner's
    /// [`ClusterConfig::disk_hit_us`] penalty is lifted — by then its
    /// warm-started disk tier has drained into RAM. `0` keeps the
    /// legacy behaviour of charging the penalty for the rest of the
    /// run, long after the cold tier stopped being cold.
    pub drain_us: f64,
    /// Enables the adaptive planner: once the static churn schedule is
    /// exhausted, the dispatcher watches the live nodes' virtual queue
    /// depth at every flush and triggers a partial migration when the
    /// backlog imbalance crosses the threshold (hot-key drift parks the
    /// hot features' owner at the back of every queue).
    pub adaptive: bool,
    /// Backlog imbalance — max minus min live-node virtual queue depth
    /// (µs) at a flush instant — that arms an adaptive migration.
    pub adaptive_threshold_us: f64,
    /// Minimum virtual time between adaptive migrations (µs).
    pub adaptive_cooldown_us: f64,
    /// Features moved off the busiest node per adaptive migration.
    pub adaptive_max_moves: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            streaming_chunks: 0,
            chunk_interval_us: 500.0,
            drain_us: 0.0,
            adaptive: false,
            adaptive_threshold_us: 2_000.0,
            adaptive_cooldown_us: 5_000.0,
            adaptive_max_moves: 2,
        }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            workers_per_node: 1,
            vnodes: DEFAULT_VNODES,
            cache_shards: 16,
            trace: QueryTraceConfig {
                num_queries: 10_000,
                mean_size: 32.0,
                sigma: 1.0,
                max_size: 512,
                qps: 1000.0,
                poisson_arrivals: true,
            },
            scenario: LoadScenario::SteadyPoisson,
            churn: Vec::new(),
            node_capacity_gflops: Vec::new(),
            seed: 42,
            sla_us: 10_000.0,
            max_batch_samples: 256,
            max_batch_wait_us: 2_000.0,
            queue_depth: 0,
            pace_ingress: false,
            route: RoutePolicy::MpRec,
            virtual_gflops: 2.0,
            dispatch_overhead_us: 30.0,
            net_overhead_us: 150.0,
            disk_hit_us: 2.0,
            accuracy: PathAccuracy::default(),
            histogram_subs: DEFAULT_SUBS_PER_OCTAVE,
            recorder: TraceConfig::default(),
            faults: FaultPlan::default(),
            chaos: ChaosConfig::default(),
            rebalance: RebalanceConfig::default(),
            tenants: TrafficConfig::default(),
            model: RuntimeModelConfig::default(),
        }
    }
}

/// One simulated node: a full-weight model replica (so any feature can
/// execute anywhere after a rebalance) plus its capacity budget.
#[derive(Debug)]
struct ClusterNode {
    id: u32,
    model: Arc<RuntimeModel>,
    capacity_gflops: f64,
}

/// One interval of cluster membership between churn events: the live
/// node set, its shard plan, the per-path pruned scatter assignments,
/// and the capacity-aware slowest-shard routing profiles.
#[derive(Debug)]
pub struct ClusterEpoch {
    /// Virtual start time of the epoch (0 for the boot epoch, the churn
    /// event's timestamp afterwards).
    pub start_us: f64,
    /// Live node ids, ascending.
    pub live: Vec<u32>,
    /// The feature-shard assignment in force.
    pub plan: FeatureShardPlan,
    /// Virtual-time mapping set the front-end routes on (shared with
    /// the replay simulator by the differential tests).
    pub mappings: MappingSet,
    /// Per mapping index: the pruned scatter assignment — `(node id,
    /// features that node pools for a batch on this path)`. DHE-cached
    /// features always execute on their shard owner; replicated
    /// table-only features fold onto the first target.
    pub assignments: Vec<Vec<(u32, Arc<Vec<usize>>)>>,
    /// Per live node: its consistent-hash-ring successor — the hedge
    /// target for a slow scatter leg on that node. Pairs `(node,
    /// successor)` in live-node order; empty for a single-node epoch.
    pub hedge_next: Vec<(u32, u32)>,
}

impl ClusterEpoch {
    /// The scatter target node ids of mapping `idx`, ascending.
    pub fn targets(&self, idx: usize) -> Vec<u32> {
        self.assignments[idx].iter().map(|&(id, _)| id).collect()
    }
}

/// Reusable buffers for the synchronous scatter/gather path
/// ([`Cluster::execute_with`]): one [`ScratchSpace`] and one partial
/// matrix per scatter slot, the gathered pool, and the top-MLP scratch.
/// With a warm `ClusterScratch`, an executed batch performs zero heap
/// allocations (extended guard in `tests/zero_alloc.rs`).
#[derive(Debug, Default)]
pub struct ClusterScratch {
    per_node: Vec<ScratchSpace>,
    partials: Vec<Matrix>,
    pooled: Matrix,
    top: MlpScratch,
}

/// Per-epoch slice of a cluster serve: what this membership interval
/// dispatched and how each node's cache fared during it.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Virtual start time of the epoch (µs).
    pub start_us: f64,
    /// Live node ids during the epoch, ascending.
    pub live: Vec<u32>,
    /// Micro-batches dispatched while this epoch was current.
    pub batches: u64,
    /// Cache-counter delta per replica over this epoch, parallel to
    /// [`ClusterReport::node_ids`]. A rebalanced shard's new owner
    /// starts cold here — the post-failure hit-rate dip and its
    /// recovery are read off consecutive epochs.
    pub per_node_cache: Vec<CacheStats>,
    /// Metrics-registry snapshot taken at the epoch's closing
    /// quiescence barrier, one slot per replica (parallel to
    /// [`ClusterReport::node_ids`]). Counters are cumulative across
    /// epochs; gauges (queue depth, occupancy, SLA-slack percentiles)
    /// are point-in-time values of the epoch that just closed.
    pub metrics: MetricsSnapshot,
}

impl EpochReport {
    /// Merged encoder hit rate across all replicas for this epoch.
    pub fn hit_rate(&self) -> f64 {
        self.per_node_cache
            .iter()
            .fold(CacheStats::default(), |acc, s| acc.merged(s))
            .encoder_hit_rate()
    }
}

/// Everything one cluster serve produced.
#[derive(Debug)]
pub struct ClusterReport {
    /// Aggregate results in the simulator's outcome shape.
    pub outcome: ServingOutcome,
    /// Merged MP-Cache stats across all replicas.
    pub cache: CacheStats,
    /// Replica node ids, in construction order (initial nodes, then
    /// joiners); every `per_node_*` vector below is parallel to this.
    pub node_ids: Vec<u32>,
    /// Per-replica MP-Cache stats (the per-shard hit-rate view).
    pub per_node_cache: Vec<CacheStats>,
    /// Features owned per replica under the final epoch's plan (0 for
    /// failed nodes).
    pub per_node_features: Vec<usize>,
    /// Scatter jobs executed per replica (summed over its workers).
    pub per_node_batches: Vec<u64>,
    /// Merged measured-latency histogram (at the configured
    /// resolution).
    pub histogram: LatencyHistogram,
    /// Deterministic virtual-time latency histogram: per query,
    /// completion minus arrival — for retried batches the *full*
    /// latency including the failed attempt, not just the retry leg.
    pub virtual_histogram: LatencyHistogram,
    /// Queries whose virtual-time completion exceeded the SLA.
    pub virtual_sla_violations: u64,
    /// Queries whose measured latency exceeded the SLA.
    pub measured_sla_violations: u64,
    /// Queries routed by the front-end (must equal
    /// `outcome.completed`).
    pub routed_queries: u64,
    /// Path chosen per micro-batch, in dispatch order.
    pub path_decisions: Vec<PathKind>,
    /// Batches whose in-flight node failed and were re-executed on the
    /// remapped owners (each failure of one batch counts once).
    pub retried_batches: u64,
    /// Queries inside retried batches.
    pub retried_queries: u64,
    /// Low-priority queries dropped by the brownout controller's last
    /// rung before routing (each carries an explicit `Shed` outcome in
    /// the trace; they never reach a node).
    pub shed_queries: u64,
    /// Scatter legs that missed their per-leg virtual-time deadline
    /// (`chaos.timeout_mult ×` the scored execution cost).
    pub leg_timeouts: u64,
    /// Hedge legs issued: after a slow leg passed the hedge fraction of
    /// its timeout budget, the batch was re-issued to the node's ring
    /// successor, first result winning.
    pub hedged_legs: u64,
    /// Backoff retries of timed-out legs (both legs' time is charged to
    /// the virtual histogram, extending the churn-retry contract).
    pub leg_retries: u64,
    /// Incremental shard-migration steps executed: streaming chunk
    /// flips plus adaptive partial migrations (0 under the legacy
    /// barrier default).
    pub migration_steps: u64,
    /// Overlay epochs the adaptive planner opened, each one partial
    /// migration triggered by live backlog imbalance (0 with the
    /// planner off).
    pub adaptive_replans: u64,
    /// Per-tenant accounting rows, indexed by tenant id (row 0 covers
    /// legacy untenanted traffic). Offered load partitions exactly:
    /// Σ (completed + shed) over rows equals the trace length, and each
    /// row's histogram/violation counters cover only that tenant's
    /// queries — the isolation surface `tests/sim_vs_runtime.rs` pins
    /// against the replay twin.
    pub tenants: Vec<TenantReport>,
    /// Per-epoch slices: membership, dispatch counts, cache deltas.
    pub epochs: Vec<EpochReport>,
    /// Sum of all top-MLP scores.
    pub checksum: f64,
    /// Initial node count the run was configured with.
    pub nodes: usize,
    /// Flight-recorder tracks (`dispatcher`, `node-{id}-worker-{w}`,
    /// `merger`) when [`ClusterConfig::recorder`] was enabled. The
    /// dispatcher track is deterministic in `(config, seed)` and is the
    /// twin-agreement surface pinned by `tests/sim_vs_runtime.rs`.
    pub trace: Option<TraceRecording>,
}

/// One query inside a dispatched batch (front-end bookkeeping).
#[derive(Debug, Clone, Copy)]
struct WorkQuery {
    size: u64,
    real_arrival: Instant,
}

/// A scattered micro-batch, shared by its target nodes and the merger.
#[derive(Debug)]
struct BatchShared {
    path: PathKind,
    specs: Vec<(u64, u64)>,
    queries: Vec<WorkQuery>,
    total: usize,
    /// Dispatch-order batch id (the flight recorder's correlation key).
    batch: u64,
    /// Virtual execution window (final leg), carried so node workers
    /// and the merger can stamp their events in virtual time.
    vstart_us: f64,
    vdone_us: f64,
    /// One partial-pool slot per scatter target, filled by that node's
    /// worker.
    partials: Vec<Mutex<Option<Matrix>>>,
    /// Targets still computing; the worker that drops this to zero
    /// hands the batch to the merger.
    pending: AtomicUsize,
}

/// One unit of scatter work on a node's queue: which slot of which
/// batch, pooling which features.
#[derive(Debug)]
struct ScatterJob {
    shared: Arc<BatchShared>,
    slot: usize,
    features: Arc<Vec<usize>>,
}

#[derive(Debug)]
struct NodeWorkerReport {
    batches: u64,
    error: Option<String>,
    /// This worker's flight-recorder track (None when tracing is off).
    ring: Option<EventRing>,
}

#[derive(Debug)]
struct MergerReport {
    histogram: LatencyHistogram,
    completed: u64,
    samples: u64,
    measured_violations: u64,
    checksum: f64,
    last_done: Instant,
    error: Option<String>,
    /// The merger's flight-recorder track (None when tracing is off).
    ring: Option<EventRing>,
}

/// Cross-thread progress ledger: how many batches the merger has fully
/// gathered, plus a failure flag. The front-end blocks on it at epoch
/// boundaries (quiescence barrier) so cache snapshots and queue
/// teardown happen with no batch in flight.
#[derive(Debug)]
struct Progress {
    state: Mutex<(u64, bool)>,
    cv: Condvar,
}

impl Progress {
    fn new() -> Self {
        Progress {
            state: Mutex::new((0, false)),
            cv: Condvar::new(),
        }
    }

    fn batch_done(&self) {
        self.state.lock().0 += 1;
        self.cv.notify_all();
    }

    fn fail(&self) {
        self.state.lock().1 = true;
        self.cv.notify_all();
    }

    fn failed(&self) -> bool {
        self.state.lock().1
    }

    /// Blocks until `target` batches completed; returns `false` if a
    /// worker or the merger failed first.
    fn wait_for_batches(&self, target: u64) -> bool {
        let mut guard = self.state.lock();
        loop {
            if guard.1 {
                return false;
            }
            if guard.0 >= target {
                return true;
            }
            self.cv.wait_for(&mut guard, Duration::from_millis(25));
        }
    }
}

/// Marks the run failed if the owning thread unwinds, so the
/// front-end's quiescence barrier can never hang on a panicked worker.
struct FailOnPanic<'a>(&'a Progress);

impl Drop for FailOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.fail();
        }
    }
}

/// Front-end (deterministic) tallies.
#[derive(Debug)]
struct DispatchTally {
    usage: PathUsage,
    correct_samples: f64,
    virtual_violations: u64,
    routed: u64,
    decisions: Vec<PathKind>,
    /// Per-tenant tallies, indexed by tenant id (preallocated before
    /// the dispatch loop so steady-state accounting never allocates).
    per_tenant: Vec<TenantTally>,
    virtual_histogram: LatencyHistogram,
    retried_batches: u64,
    retried_queries: u64,
    /// Chaos-plane totals (per-slot splits live in `registry`).
    shed_queries: u64,
    leg_timeouts: u64,
    hedged_legs: u64,
    leg_retries: u64,
    epoch_batches: Vec<u64>,
    /// Incremental shard-migration steps executed (streaming chunk
    /// flips plus adaptive partial migrations).
    migration_steps: u64,
    /// Overlay epochs the adaptive planner opened.
    adaptive_replans: u64,
    /// Per-replica cache snapshots taken at each processed epoch
    /// boundary (quiescent).
    epoch_snapshots: Vec<Vec<CacheStats>>,
    aborted: bool,
    /// Dispatcher flight-recorder track (None when tracing is off).
    ring: Option<EventRing>,
    /// Typed metric cells, one slot per replica (slot 0 doubles as the
    /// cluster-global slot for slack/violation/drop metrics).
    registry: MetricsRegistry,
    /// One registry snapshot per closed epoch, in epoch order.
    epoch_metrics: Vec<MetricsSnapshot>,
    /// Per-replica virtual busy-µs inside the current epoch (feeds the
    /// occupancy gauge, reset at each barrier).
    busy_us: Vec<f64>,
    /// SLA-slack distribution of the current epoch (reset at each
    /// barrier).
    slack: LatencyHistogram,
    /// Latest virtual completion seen (closes the final epoch's span).
    last_done_us: f64,
}

/// One internal rebalance step on the virtual-time axis. The configured
/// [`ChurnEvent`]s expand into these at build time: a failure or a
/// legacy barrier join stays a single step, a streaming join becomes a
/// window-open plus one flip per chunk, and a configured drain appends
/// a penalty lift. Step `i` opens epoch `i + 1`.
#[derive(Debug, Clone)]
enum RebalanceAction {
    /// Stop-the-world removal of a failed node (always a barrier: a
    /// dead node cannot co-serve a dual-ownership window).
    Fail(u32),
    /// Legacy barrier join: the whole remap diff flips at once behind
    /// the quiescence barrier, warm-starting the joiner.
    Join(u32),
    /// A streaming join's window open: the joiner is live but owns
    /// nothing yet; all its incoming features are pending, still
    /// read-served (and written) by their old owners.
    WindowOpen {
        /// The joining node.
        node: u32,
        /// Features registered in the dual-ownership window.
        moves: u64,
    },
    /// One chunk flip of an open window: ship the chunk's warm entries
    /// (dynamic and disk tier) from the old owners, then flip
    /// ownership of exactly these features.
    ChunkFlip {
        /// The receiving (joined) node.
        node: u32,
        /// The features flipping in this chunk.
        feats: Vec<usize>,
    },
    /// The joiner's warm-started disk tier has drained into RAM: swap
    /// the penalized routing profiles back out. Carries no payload —
    /// the lift has no cache or queue side effects, it only advances
    /// the epoch index to the unpenalized profiles.
    PenaltyLift,
}

#[derive(Debug, Clone)]
struct InternalEvent {
    at_us: f64,
    action: RebalanceAction,
}

/// Overlay epochs the adaptive planner opened during the most recent
/// serve, appended after the static schedule in the merged epoch index
/// space (static epochs first, then these in trigger order).
#[derive(Debug, Default)]
struct AdaptiveState {
    epochs: Vec<ClusterEpoch>,
    /// Virtual trigger time per overlay epoch (the replay spec's event
    /// timestamps; routing switches at the triggering flush).
    at_us: Vec<f64>,
}

/// The elastic feature-sharded multi-node serving runtime: build once
/// (optionally scheduling churn), serve a trace.
#[derive(Debug)]
pub struct Cluster {
    cfg: ClusterConfig,
    nodes: Vec<ClusterNode>,
    epochs: Vec<ClusterEpoch>,
    paths: Vec<PathKind>,
    labels: Vec<String>,
    /// The churn schedule expanded into internal rebalance steps, one
    /// per epoch transition (parallel to `epochs[1..]`).
    events: Vec<InternalEvent>,
    /// Ring state after the whole churn schedule — adaptive overlay
    /// epochs read their hedge successors off it.
    ring: HashRing,
    /// What the adaptive planner did during the most recent serve.
    adaptive: Mutex<AdaptiveState>,
}

impl Cluster {
    /// Builds the replicas, the per-epoch shard plans (walking the churn
    /// schedule through the ring's remap-diff API), and the
    /// capacity-aware slowest-shard mapping set of every epoch.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadConfig`] on degenerate configuration —
    /// zero nodes/workers/batch budget, an unsorted churn schedule,
    /// failing an unknown or last-remaining node, joining a live node,
    /// or reusing a node id — and propagates model-construction errors.
    pub fn new(cfg: ClusterConfig) -> Result<Self> {
        let mut cfg = cfg;
        if cfg.tenants.is_enabled() {
            cfg.tenants.validate().map_err(RuntimeError::BadConfig)?;
            // Default the per-tenant ID skews off the traffic spec so a
            // tenanted cluster gets distinct hot sets without repeating
            // the exponents in the model config (matches Engine::new).
            if cfg.model.tenant_zipf.is_empty() {
                cfg.model.tenant_zipf = cfg.tenants.tenants.iter().map(|t| t.id_zipf).collect();
            }
        }
        if cfg.nodes == 0 {
            return Err(RuntimeError::BadConfig("nodes must be >= 1".into()));
        }
        if cfg.workers_per_node == 0 {
            return Err(RuntimeError::BadConfig(
                "workers_per_node must be >= 1".into(),
            ));
        }
        if cfg.max_batch_samples == 0 {
            return Err(RuntimeError::BadConfig(
                "max_batch_samples must be >= 1".into(),
            ));
        }
        let mut ids: Vec<u32> = (0..cfg.nodes as u32).collect();
        for ev in &cfg.churn {
            if ev.action == ChurnAction::Join {
                if ids.contains(&ev.node) {
                    return Err(RuntimeError::BadConfig(format!(
                        "node id {} reused by a join (ids are never recycled)",
                        ev.node
                    )));
                }
                ids.push(ev.node);
            }
        }
        let mut nodes = Vec::with_capacity(ids.len());
        for id in ids {
            // Same seed on every node: feature f's table/stack weights
            // are identical wherever f lands, so sharded execution
            // reproduces single-node math even after a rebalance.
            let model = RuntimeModel::build(&cfg.model, cfg.cache_shards, cfg.seed)?;
            nodes.push(ClusterNode {
                id,
                model: Arc::new(model),
                capacity_gflops: capacity_of(&cfg, id),
            });
        }
        Self::from_parts(cfg, nodes)
    }

    /// Rebuilds epochs over existing replicas (used by `new` and the
    /// [`Cluster::fail_node`] / [`Cluster::add_node`] schedule
    /// builders).
    fn from_parts(cfg: ClusterConfig, nodes: Vec<ClusterNode>) -> Result<Self> {
        let features = cfg.model.sparse_features;
        let rb = cfg.rebalance;
        let mut ring = HashRing::with_nodes(cfg.vnodes, 0..cfg.nodes as u32);
        let mut plan = FeatureShardPlan::new(&ring, features);
        let mut epochs = Vec::with_capacity(cfg.churn.len() + 1);
        let mut events: Vec<InternalEvent> = Vec::new();
        epochs.push(build_epoch(&cfg, &nodes, 0.0, &ring, &plan, None)?);
        let mut last_at = 0.0f64;
        for (i, ev) in cfg.churn.iter().enumerate() {
            if ev.at_us <= last_at {
                return Err(RuntimeError::BadConfig(format!(
                    "churn events must have strictly increasing positive times, got {} after {}",
                    ev.at_us, last_at
                )));
            }
            last_at = ev.at_us;
            // Virtual-time room before the next configured event: every
            // streamed sub-step of this event (chunk flips, the penalty
            // lift) must land strictly inside it.
            let budget = cfg
                .churn
                .get(i + 1)
                .map_or(f64::INFINITY, |n| n.at_us - ev.at_us);
            let old = ring.clone();
            match ev.action {
                ChurnAction::Fail => {
                    if !ring.contains(ev.node) {
                        return Err(RuntimeError::BadConfig(format!(
                            "cannot fail node {}: not live at t={}us",
                            ev.node, ev.at_us
                        )));
                    }
                    if ring.len() == 1 {
                        return Err(RuntimeError::BadConfig(
                            "cannot fail the last live node".into(),
                        ));
                    }
                    ring.remove_node(ev.node);
                    // A failure is always a barrier swap: the dead node
                    // cannot co-serve a dual-ownership window, so its
                    // features remap to the survivors in one step.
                    plan.apply(&ring.diff(&old, features as u64));
                    debug_assert_eq!(plan, FeatureShardPlan::new(&ring, features));
                    events.push(InternalEvent {
                        at_us: ev.at_us,
                        action: RebalanceAction::Fail(ev.node),
                    });
                    epochs.push(build_epoch(&cfg, &nodes, ev.at_us, &ring, &plan, None)?);
                }
                ChurnAction::Join => {
                    if ring.contains(ev.node) {
                        return Err(RuntimeError::BadConfig(format!(
                            "cannot join node {}: already live at t={}us",
                            ev.node, ev.at_us
                        )));
                    }
                    ring.add_node(ev.node);
                    // Incremental rebalance: only the ~K/N remapped
                    // features change owner (the diff), everything else
                    // keeps its shard.
                    let diff = ring.diff(&old, features as u64);
                    let mut lift_from = ev.at_us;
                    if rb.streaming_chunks > 0 && !diff.moves().is_empty() {
                        // Streaming handoff: open the dual-ownership
                        // window (the joiner is live but owns nothing —
                        // no cold-tier penalty yet), then flip the diff
                        // chunk by chunk, each flip preceded by the old
                        // owners shipping that chunk's warm entries.
                        let chunks = diff.chunked(rb.streaming_chunks);
                        let step = if budget.is_finite() {
                            rb.chunk_interval_us.min(budget / (chunks.len() + 2) as f64)
                        } else {
                            rb.chunk_interval_us
                        };
                        events.push(InternalEvent {
                            at_us: ev.at_us,
                            action: RebalanceAction::WindowOpen {
                                node: ev.node,
                                moves: diff.moves().len() as u64,
                            },
                        });
                        plan.begin_handoff(&diff);
                        epochs.push(build_epoch(&cfg, &nodes, ev.at_us, &ring, &plan, None)?);
                        for (k, chunk) in chunks.iter().enumerate() {
                            let at = ev.at_us + (k + 1) as f64 * step;
                            let feats: Vec<usize> =
                                chunk.moves().iter().map(|m| m.key as usize).collect();
                            plan.commit_handoff(&feats);
                            events.push(InternalEvent {
                                at_us: at,
                                action: RebalanceAction::ChunkFlip {
                                    node: ev.node,
                                    feats,
                                },
                            });
                            epochs.push(build_epoch(
                                &cfg,
                                &nodes,
                                at,
                                &ring,
                                &plan,
                                Some(ev.node),
                            )?);
                            lift_from = at;
                        }
                        debug_assert!(plan.pending_handoffs().is_empty());
                        debug_assert_eq!(plan, FeatureShardPlan::new(&ring, features));
                    } else {
                        plan.apply(&diff);
                        debug_assert_eq!(plan, FeatureShardPlan::new(&ring, features));
                        // A barrier join opens an epoch where the new
                        // node's RAM tiers are cold (its lookups come
                        // from the warm-started disk tier): charge its
                        // paths the disk-hit penalty.
                        events.push(InternalEvent {
                            at_us: ev.at_us,
                            action: RebalanceAction::Join(ev.node),
                        });
                        epochs.push(build_epoch(
                            &cfg,
                            &nodes,
                            ev.at_us,
                            &ring,
                            &plan,
                            Some(ev.node),
                        )?);
                    }
                    if rb.drain_us > 0.0 && cfg.disk_hit_us > 0.0 {
                        // Penalty drain: once the joiner's shipped disk
                        // records have promoted into RAM, re-open the
                        // epoch with unpenalized profiles. (The legacy
                        // `drain_us == 0` charged the penalty for the
                        // rest of the run — long after the disk tier
                        // stopped being cold.)
                        let headroom = if budget.is_finite() {
                            (budget - (lift_from - ev.at_us)) / 2.0
                        } else {
                            f64::INFINITY
                        };
                        let at = lift_from + rb.drain_us.min(headroom);
                        events.push(InternalEvent {
                            at_us: at,
                            action: RebalanceAction::PenaltyLift,
                        });
                        epochs.push(build_epoch(&cfg, &nodes, at, &ring, &plan, None)?);
                    }
                }
            }
        }
        let (paths, labels) = {
            let m = &epochs[0].mappings;
            let labels = m
                .mappings
                .iter()
                .map(|mp| mp.label(&m.platforms))
                .collect();
            (path_order(cfg.route), labels)
        };
        Ok(Cluster {
            cfg,
            nodes,
            epochs,
            paths,
            labels,
            events,
            ring,
            adaptive: Mutex::new(AdaptiveState::default()),
        })
    }

    /// Schedules a node failure at virtual time `at_us` (after every
    /// already-scheduled event) and rebuilds the epoch sequence. The
    /// failed node's features remap to the survivors; batches in flight
    /// to it at the failure instant are retried on the new owners with
    /// the failure charged to virtual time.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadConfig`] if the node is not live at
    /// `at_us`, is the last live node, or `at_us` does not extend the
    /// schedule.
    pub fn fail_node(&mut self, node: u32, at_us: f64) -> Result<()> {
        self.push_event(ChurnEvent {
            at_us,
            node,
            action: ChurnAction::Fail,
        })
    }

    /// Schedules a fresh node joining at virtual time `at_us` (after
    /// every already-scheduled event) and rebuilds the epoch sequence.
    /// The joiner takes ownership of ~K/N features and starts with a
    /// cold cache.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadConfig`] if the id is already in use
    /// or `at_us` does not extend the schedule.
    pub fn add_node(&mut self, node: u32, at_us: f64) -> Result<()> {
        self.push_event(ChurnEvent {
            at_us,
            node,
            action: ChurnAction::Join,
        })
    }

    fn push_event(&mut self, ev: ChurnEvent) -> Result<()> {
        let mut cfg = self.cfg.clone();
        cfg.churn.push(ev);
        // Reuse the existing replicas (models are pure functions of the
        // seed, so rebuilding them would only waste time); on error the
        // cluster is left exactly as it was.
        let mut nodes: Vec<ClusterNode> = self
            .nodes
            .iter()
            .map(|n| ClusterNode {
                id: n.id,
                model: Arc::clone(&n.model),
                capacity_gflops: n.capacity_gflops,
            })
            .collect();
        if ev.action == ChurnAction::Join {
            // Match Cluster::new's validation: an id that ever had a
            // replica (initial node or earlier joiner) is never
            // recycled — a "rejoining" replica would resurrect the old
            // warm cache and contradict the cold-start fault model.
            if nodes.iter().any(|n| n.id == ev.node) {
                return Err(RuntimeError::BadConfig(format!(
                    "node id {} reused by a join (ids are never recycled)",
                    ev.node
                )));
            }
            let model = RuntimeModel::build(&cfg.model, cfg.cache_shards, cfg.seed)?;
            nodes.push(ClusterNode {
                id: ev.node,
                model: Arc::new(model),
                capacity_gflops: capacity_of(&cfg, ev.node),
            });
        }
        *self = Self::from_parts(cfg, nodes)?;
        Ok(())
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The boot epoch's feature-shard assignment.
    pub fn plan(&self) -> &FeatureShardPlan {
        &self.epochs[0].plan
    }

    /// The static epoch sequence: boot membership plus one epoch per
    /// internal rebalance step (a streaming join contributes several —
    /// window open, one per chunk flip, and the penalty lift), each
    /// with its plan, pruned scatter assignments, and routing profiles.
    /// Overlay epochs opened by the adaptive planner during a serve are
    /// not included here; [`Cluster::replay_spec`] merges them in.
    pub fn epochs(&self) -> &[ClusterEpoch] {
        &self.epochs
    }

    /// The boot epoch's virtual-time mapping set (shared with the
    /// replay simulator by differential tests; per-epoch sets live in
    /// [`Cluster::epochs`]).
    pub fn mapping_set(&self) -> &MappingSet {
        &self.epochs[0].mappings
    }

    /// Execution path per mapping index (identical across epochs).
    pub fn paths(&self) -> &[PathKind] {
        &self.paths
    }

    /// Replica node ids in construction order (initial nodes, then
    /// joiners) — the axis of every per-node report vector.
    pub fn node_ids(&self) -> Vec<u32> {
        self.nodes.iter().map(|n| n.id).collect()
    }

    /// The cluster's serving contract as the replay simulator consumes
    /// it: per-epoch routing profiles and pruned scatter target sets,
    /// plus the internal rebalance steps separating epochs (streaming
    /// sub-steps and adaptive re-plans included; only failures carry a
    /// `failed` node, because only failures retry in-flight batches).
    /// Overlay epochs the adaptive planner opened during the most
    /// recent [`Cluster::serve`] are appended after the static
    /// schedule, so call this *after* serving when the planner is on.
    /// Feeding this to [`mprec_serving::replay::replay_cluster`] with
    /// the same trace must reproduce this cluster's decision trail
    /// exactly (`tests/sim_vs_runtime.rs`).
    pub fn replay_spec(&self) -> mprec_serving::replay::ClusterReplaySpec {
        let adaptive = self.adaptive.lock();
        let spec_of = |e: &ClusterEpoch| mprec_serving::replay::ClusterEpochSpec {
            mappings: e.mappings.clone(),
            targets: e
                .assignments
                .iter()
                .map(|a| a.iter().map(|&(id, _)| id).collect())
                .collect(),
            live: e.live.clone(),
            hedge_next: e.hedge_next.clone(),
        };
        mprec_serving::replay::ClusterReplaySpec {
            epochs: self
                .epochs
                .iter()
                .chain(adaptive.epochs.iter())
                .map(spec_of)
                .collect(),
            events: self
                .events
                .iter()
                .map(|ev| mprec_serving::replay::ClusterChurnSpec {
                    at_us: ev.at_us,
                    failed: match ev.action {
                        RebalanceAction::Fail(node) => Some(node),
                        _ => None,
                    },
                })
                .chain(
                    adaptive
                        .at_us
                        .iter()
                        .map(|&at_us| mprec_serving::replay::ClusterChurnSpec {
                            at_us,
                            failed: None,
                        }),
                )
                .collect(),
            faults: self.cfg.faults.clone(),
            chaos: self.cfg.chaos,
            degrade_rank: self.paths.iter().map(|&p| degrade_rank(p)).collect(),
        }
    }

    fn slot_of(&self, id: u32) -> usize {
        self.nodes
            .iter()
            .position(|n| n.id == id)
            .expect("assignments only reference built replicas")
    }

    /// Creates a [`ClusterScratch`] sized for this cluster.
    pub fn make_scratch(&self) -> ClusterScratch {
        ClusterScratch {
            per_node: self.nodes.iter().map(|n| n.model.make_scratch()).collect(),
            partials: self.nodes.iter().map(|_| Matrix::default()).collect(),
            pooled: Matrix::default(),
            top: MlpScratch::default(),
        }
    }

    /// Synchronous scatter/gather execution of one micro-batch under
    /// the boot epoch's pruned assignment: every target node pools its
    /// assigned features into its partial matrix, the partials are
    /// summed, and the top MLP scores the gathered pool. Zero
    /// steady-state heap allocations with a warm scratch; the threaded
    /// [`Cluster::serve`] runs the same math with the scatter fanned
    /// out across node worker pools.
    ///
    /// # Errors
    ///
    /// Propagates node execution errors.
    pub fn execute_with(
        &self,
        path: PathKind,
        queries: &[(u64, u64)],
        scratch: &mut ClusterScratch,
    ) -> Result<BatchResult> {
        let idx = self
            .paths
            .iter()
            .position(|&p| p == path)
            .ok_or_else(|| RuntimeError::BadConfig(format!("path {path} not routed")))?;
        let assignment = &self.epochs[0].assignments[idx];
        let mut total = 0u64;
        for (slot, (node_id, feats)) in assignment.iter().enumerate() {
            let node = &self.nodes[self.slot_of(*node_id)];
            total = node.model.pool_features_into(
                path,
                queries,
                feats,
                &mut scratch.per_node[slot],
                &mut scratch.partials[slot],
            )?;
        }
        if total == 0 {
            return Ok(BatchResult {
                samples: 0,
                checksum: 0.0,
            });
        }
        scratch
            .pooled
            .resize_zeroed(total as usize, self.cfg.model.emb_dim);
        for partial in scratch.partials.iter().take(assignment.len()) {
            scratch.pooled.add_assign(partial)?;
        }
        let checksum = self.nodes[0]
            .model
            .score_pooled(&scratch.pooled, &mut scratch.top)?;
        Ok(BatchResult {
            samples: total,
            checksum,
        })
    }

    /// Serves the configured trace across the node pools, applying the
    /// churn schedule as virtual time passes.
    ///
    /// # Errors
    ///
    /// Surfaces any node- or merger-side execution error.
    pub fn serve(&self) -> Result<ClusterReport> {
        for node in &self.nodes {
            node.model.cache().reset_stats();
            node.model.cache().clear_dynamic();
            // Warm-start segments are loaded mid-run (at join barriers);
            // drop them so repeated serves start identical.
            node.model.cache().clear_disk();
        }
        let trace = if self.cfg.tenants.is_enabled() {
            self.cfg.tenants.generate(self.cfg.seed)
        } else {
            scenario::generate(self.cfg.trace, self.cfg.scenario, self.cfg.seed)
        };
        let depth = if self.cfg.queue_depth == 0 {
            self.cfg.workers_per_node * 4
        } else {
            self.cfg.queue_depth
        };
        let node_queues: Vec<Arc<BoundedQueue<ScatterJob>>> = (0..self.nodes.len())
            .map(|_| Arc::new(BoundedQueue::with_capacity(depth)))
            .collect();
        let merge_queue: Arc<BoundedQueue<Arc<BatchShared>>> =
            Arc::new(BoundedQueue::with_capacity((self.nodes.len() * 4).max(8)));
        let progress = Arc::new(Progress::new());
        let start = Instant::now();

        let recorder = self.cfg.recorder;
        let mut workers = Vec::with_capacity(self.nodes.len() * self.cfg.workers_per_node);
        for (n, node) in self.nodes.iter().enumerate() {
            for _ in 0..self.cfg.workers_per_node {
                let queue = Arc::clone(&node_queues[n]);
                let merge = Arc::clone(&merge_queue);
                let model = Arc::clone(&node.model);
                let progress = Arc::clone(&progress);
                let id = node.id;
                workers.push(std::thread::spawn(move || {
                    node_worker_loop(&queue, &merge, &model, &progress, id, recorder)
                }));
            }
        }
        let merger = {
            let merge = Arc::clone(&merge_queue);
            let model = Arc::clone(&self.nodes[0].model);
            let progress = Arc::clone(&progress);
            let sla_us = self.cfg.sla_us;
            let subs = self.cfg.histogram_subs;
            let emb_dim = self.cfg.model.emb_dim;
            std::thread::spawn(move || {
                merger_loop(&merge, &model, &progress, sla_us, subs, emb_dim, start, recorder)
            })
        };

        let tally = self.dispatch(&trace, &node_queues, &progress, start);
        for q in &node_queues {
            q.close();
        }
        let mut node_batches = vec![0u64; self.nodes.len()];
        let mut worker_rings: Vec<(String, EventRing)> = Vec::new();
        let mut worker_error: Option<String> = None;
        for (i, w) in workers.into_iter().enumerate() {
            let mut report = w.join().expect("node worker thread panicked");
            let node_slot = i / self.cfg.workers_per_node;
            node_batches[node_slot] += report.batches;
            if let Some(ring) = report.ring.take() {
                let node = self.nodes[node_slot].id;
                let worker = i % self.cfg.workers_per_node;
                worker_rings.push((format!("node-{node}-worker-{worker}"), ring));
            }
            if worker_error.is_none() {
                worker_error = report.error;
            }
        }
        merge_queue.close();
        let merged = merger.join().expect("merger thread panicked");
        if let Some(msg) = worker_error {
            return Err(RuntimeError::Worker(msg));
        }
        if let Some(msg) = merged.error {
            return Err(RuntimeError::Worker(msg));
        }
        if tally.aborted {
            return Err(RuntimeError::Worker(
                "cluster run aborted at an epoch barrier".into(),
            ));
        }
        Ok(self.assemble(tally, merged, node_batches, worker_rings, start))
    }

    /// Ships a joining node its owned features' dynamic-tier entries via
    /// the remap diff: every feature the new plan (`epoch_idx`) assigns
    /// to the joiner moved off some old owner (the joiner owned nothing
    /// before), so each old owner exports those features' warm entries
    /// as a persistent segment and the joiner loads them into its disk
    /// tier. First traffic then hits disk (charged
    /// [`ClusterConfig::disk_hit_us`] via the epoch profiles) and
    /// promotes into RAM — no cold rewarm from scratch. Owners are
    /// visited in ascending id order so the hand-off is deterministic.
    ///
    /// Must be called at a quiescence barrier (no in-flight batches).
    /// Returns the number of warm entries shipped to the joiner (the
    /// flight recorder's `WarmStart` payload).
    fn warm_start_joiner(&self, joiner: u32, epoch_idx: usize) -> u64 {
        let new_plan = &self.epochs[epoch_idx].plan;
        let old_plan = &self.epochs[epoch_idx - 1].plan;
        self.ship_features(joiner, old_plan, new_plan.features_of(joiner))
    }

    /// Ships `feats`' warm cache entries — dynamic *and* disk tier —
    /// from their owners under `old_plan` into `receiver`'s disk tier.
    /// Shipping the disk tier too is what lets warm state survive a
    /// *second* migration: records an earlier hand-off had parked in
    /// the old owner's disk segment (or that never got promoted) used
    /// to be silently dropped by the dynamic-only export. Owners are
    /// visited in ascending id order so the hand-off is deterministic;
    /// features already owned by the receiver are skipped.
    ///
    /// Must be called at a quiescence barrier (no in-flight batches).
    /// Returns the number of records loaded (the flight recorder's
    /// `WarmStart` / `MigrationDone` payload).
    fn ship_features(&self, receiver: u32, old_plan: &FeatureShardPlan, feats: &[usize]) -> u64 {
        let mut by_owner: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for &f in feats {
            let owner = old_plan.node_of(f);
            if owner != receiver {
                by_owner.entry(owner).or_default().push(f);
            }
        }
        let dst = self.nodes[self.slot_of(receiver)].model.cache();
        let mut loaded = 0u64;
        for (owner, feats) in by_owner {
            let src = self.nodes[self.slot_of(owner)].model.cache();
            // Disk first, dynamic second: the dynamic tier holds the
            // live (most recently admitted) values, and the receiver's
            // append-only log is last-write-wins.
            let disk = src.export_disk_segment(|f| feats.contains(&f));
            let dynamic = src.export_dynamic_segment(|f| feats.contains(&f));
            for seg in [disk, dynamic] {
                loaded += dst
                    .load_disk_segment(&seg)
                    .expect("own export is always a valid segment")
                    as u64;
            }
        }
        loaded
    }

    /// The epoch at merged index `e`: the static schedule first, then
    /// any overlay epochs the adaptive planner opened this serve.
    fn epoch_at<'a>(&'a self, dyn_epochs: &'a [ClusterEpoch], e: usize) -> &'a ClusterEpoch {
        if e < self.epochs.len() {
            &self.epochs[e]
        } else {
            &dyn_epochs[e - self.epochs.len()]
        }
    }

    /// Front-end loop: virtual-time batching + routing + pruned
    /// scatter, walking the churn schedule as flush times pass events.
    fn dispatch(
        &self,
        trace: &[Query],
        node_queues: &[Arc<BoundedQueue<ScatterJob>>],
        progress: &Progress,
        start: Instant,
    ) -> DispatchTally {
        let slots = self.nodes.len();
        let mut tally = DispatchTally {
            usage: PathUsage::default(),
            correct_samples: 0.0,
            virtual_violations: 0,
            routed: 0,
            decisions: Vec::new(),
            per_tenant: Vec::new(),
            virtual_histogram: LatencyHistogram::with_subs_per_octave(self.cfg.histogram_subs),
            retried_batches: 0,
            retried_queries: 0,
            shed_queries: 0,
            leg_timeouts: 0,
            hedged_legs: 0,
            leg_retries: 0,
            epoch_batches: vec![0; self.epochs.len()],
            migration_steps: 0,
            adaptive_replans: 0,
            epoch_snapshots: Vec::new(),
            aborted: false,
            ring: self.cfg.recorder.ring(),
            registry: MetricsRegistry::new(slots),
            epoch_metrics: Vec::new(),
            busy_us: vec![0.0; slots],
            slack: LatencyHistogram::with_subs_per_octave(self.cfg.histogram_subs),
            last_done_us: 0.0,
        };
        let mut free_at = vec![0.0f64; self.nodes.len()];
        let mut cur_epoch = 0usize;
        let mut dispatched = 0u64;
        // One pending list per tenant: each tenant batches on its own
        // deadline axis (same contract as the single-node engine), so a
        // legacy trace (every id tenant 0) collapses to the historical
        // single-pending behaviour bit for bit.
        let tenant_count = trace
            .iter()
            .map(|q| scenario::tenant_of(q.id) as usize + 1)
            .max()
            .unwrap_or(1)
            .max(self.cfg.tenants.tenant_count());
        tally.per_tenant = (0..tenant_count).map(|_| TenantTally::new()).collect();
        let classes: Vec<SlaClass> = (0..tenant_count)
            .map(|t| self.cfg.tenants.class_of(t as u32, self.cfg.sla_us))
            .collect();
        let mut pending: Vec<Vec<&Query>> = vec![Vec::new(); tenant_count];
        let mut pending_samples: Vec<u64> = vec![0; tenant_count];
        // Overlay epochs the adaptive planner opens mid-serve, indexed
        // after the static schedule; published to `self.adaptive` at
        // the end so `replay_spec` and `assemble` see them.
        let mut dyn_epochs: Vec<ClusterEpoch> = Vec::new();
        let mut dyn_event_at: Vec<f64> = Vec::new();
        let mut last_adaptive_us = f64::NEG_INFINITY;

        macro_rules! advance_epochs {
            ($t:expr) => {
                while cur_epoch < self.events.len()
                    && self.events[cur_epoch].at_us <= $t
                    && !tally.aborted
                {
                    // Wall-clock quiescence (zero virtual cost): every
                    // dispatched batch is merged before the snapshot,
                    // shipping, and teardown, so per-epoch cache deltas
                    // are exact and a failed node's queue is provably
                    // drained. A streaming step differs from the legacy
                    // barrier in *virtual* time only: it flips one
                    // chunk of ownership instead of the whole plan, so
                    // routing never pays a stop-the-world profile shock.
                    if !progress.wait_for_batches(dispatched) {
                        tally.aborted = true;
                        break;
                    }
                    tally
                        .epoch_snapshots
                        .push(self.nodes.iter().map(|n| n.model.cache().stats()).collect());
                    let at_us = self.events[cur_epoch].at_us;
                    let new_epoch = (cur_epoch + 1) as u64;
                    match &self.events[cur_epoch].action {
                        RebalanceAction::Fail(node) => {
                            if let Some(ring) = tally.ring.as_mut() {
                                ring.record(TraceEvent::epoch_barrier(
                                    at_us, *node, new_epoch, false,
                                ));
                            }
                            node_queues[self.slot_of(*node)].close();
                        }
                        RebalanceAction::Join(node) => {
                            if let Some(ring) = tally.ring.as_mut() {
                                ring.record(TraceEvent::epoch_barrier(
                                    at_us, *node, new_epoch, true,
                                ));
                            }
                            // Warm-start: ship the joiner its owned
                            // features' warm cache entries instead of
                            // rewarming from traffic. Safe here: the
                            // quiescence means no worker is touching
                            // any cache.
                            let entries = self.warm_start_joiner(*node, cur_epoch + 1);
                            if let Some(ring) = tally.ring.as_mut() {
                                ring.record(TraceEvent::warm_start(
                                    at_us, *node, entries, new_epoch,
                                ));
                            }
                        }
                        RebalanceAction::WindowOpen { node, moves } => {
                            if let Some(ring) = tally.ring.as_mut() {
                                ring.record(TraceEvent::migration_start(
                                    at_us, *node, *moves, new_epoch,
                                ));
                            }
                        }
                        RebalanceAction::ChunkFlip { node, feats } => {
                            // Dual-write realization: everything the old
                            // owners hold for this chunk — including
                            // entries admitted *during* the window, which
                            // went to the old owners because reads did —
                            // ships right before the flip.
                            let entries = self.ship_features(
                                *node,
                                &self.epochs[cur_epoch].plan,
                                feats,
                            );
                            tally.migration_steps += 1;
                            if let Some(ring) = tally.ring.as_mut() {
                                ring.record(TraceEvent::migration_done(
                                    at_us,
                                    *node,
                                    entries,
                                    new_epoch,
                                    feats.len() as u64,
                                ));
                            }
                        }
                        // The lift only swaps penalized routing profiles
                        // for clean ones; no cache or queue side effects.
                        RebalanceAction::PenaltyLift => {}
                    }
                    // Close the departing epoch's metric window at the
                    // event timestamp (quiescent, so the just-pushed
                    // cache snapshot is exact).
                    self.close_epoch_metrics(&mut tally, &free_at, at_us, &dyn_epochs);
                    cur_epoch += 1;
                }
            };
        }

        let degrade_ranks: Vec<u32> = self.paths.iter().map(|&p| degrade_rank(p)).collect();
        let mut route_completions: Vec<f64> = Vec::new();
        let mut flush = |pending: &mut Vec<&Query>,
                         pending_samples: &mut u64,
                         tenant: usize,
                         flush_at_us: f64,
                         tally: &mut DispatchTally,
                         free_at: &mut Vec<f64>,
                         cur_epoch: &mut usize,
                         dispatched: &mut u64,
                         dyn_epochs: &mut Vec<ClusterEpoch>,
                         dyn_event_at: &mut Vec<f64>,
                         last_adaptive_us: &mut f64| {
            if pending.is_empty() {
                return;
            }
            if tally.aborted || progress.failed() {
                tally.aborted = true;
                pending.clear();
                *pending_samples = 0;
                return;
            }
            // Adaptive re-planning: once the static schedule is
            // exhausted, watch the live nodes' virtual backlog at every
            // flush. A sustained imbalance (hot-key drift parks the hot
            // features' owner at the back of every queue) triggers a
            // partial migration: ship the busiest node's lowest-id
            // owned features to the idlest live node and open an
            // overlay epoch at the flush instant. The trigger reads
            // only virtual state (`free_at`, flush time), so it is
            // deterministic, and the triggering flush itself routes
            // under the new epoch — exactly when the replay twin
            // switches, since the spec event carries this timestamp.
            if self.cfg.rebalance.adaptive
                && *cur_epoch >= self.events.len()
                && flush_at_us - *last_adaptive_us >= self.cfg.rebalance.adaptive_cooldown_us
            {
                let cur = self.epoch_at(dyn_epochs, *cur_epoch);
                let backlog =
                    |id: u32| (free_at[self.slot_of(id)] - flush_at_us).max(0.0);
                let mut busiest = cur.live[0];
                let mut idlest = cur.live[0];
                for &id in cur.live.iter().skip(1) {
                    if backlog(id) > backlog(busiest) {
                        busiest = id;
                    }
                    if backlog(id) < backlog(idlest) {
                        idlest = id;
                    }
                }
                let imbalance = backlog(busiest) - backlog(idlest);
                let moved: Vec<usize> = cur
                    .plan
                    .features_of(busiest)
                    .iter()
                    .copied()
                    .take(self.cfg.rebalance.adaptive_max_moves.max(1))
                    .collect();
                if busiest != idlest
                    && imbalance >= self.cfg.rebalance.adaptive_threshold_us
                    && !moved.is_empty()
                {
                    let old_plan = cur.plan.clone();
                    // Quiesce (wall-clock only — zero virtual cost) so
                    // the boundary snapshot and the shipped segments
                    // are exact.
                    if !progress.wait_for_batches(*dispatched) {
                        tally.aborted = true;
                        pending.clear();
                        *pending_samples = 0;
                        return;
                    }
                    tally
                        .epoch_snapshots
                        .push(self.nodes.iter().map(|n| n.model.cache().stats()).collect());
                    let entries = self.ship_features(idlest, &old_plan, &moved);
                    let mut plan = old_plan;
                    plan.reassign(&moved, idlest);
                    let epoch = build_epoch(
                        &self.cfg,
                        &self.nodes,
                        flush_at_us,
                        &self.ring,
                        &plan,
                        None,
                    )
                    .expect("overlay epoch shares the boot epoch's validated shape");
                    let new_epoch = (*cur_epoch + 1) as u64;
                    if let Some(ring) = tally.ring.as_mut() {
                        ring.record(TraceEvent::migration_start(
                            flush_at_us,
                            idlest,
                            moved.len() as u64,
                            new_epoch,
                        ));
                        ring.record(TraceEvent::migration_done(
                            flush_at_us,
                            idlest,
                            entries,
                            new_epoch,
                            moved.len() as u64,
                        ));
                    }
                    self.close_epoch_metrics(tally, free_at, flush_at_us, dyn_epochs);
                    dyn_epochs.push(epoch);
                    dyn_event_at.push(flush_at_us);
                    tally.epoch_batches.push(0);
                    tally.migration_steps += 1;
                    tally.adaptive_replans += 1;
                    *last_adaptive_us = flush_at_us;
                    *cur_epoch += 1;
                }
            }
            let e = *cur_epoch;
            let ep = self.epoch_at(dyn_epochs, e);
            // Brownout gauge: the worst live-node virtual backlog at the
            // flush instant — the same value both twins derive from
            // their own `free_at` ledgers.
            let backlog_us = ep
                .live
                .iter()
                .map(|&id| (free_at[self.slot_of(id)] - flush_at_us).max(0.0))
                .fold(0.0f64, f64::max);
            let class = &classes[tenant];
            if class.sheds(backlog_us) {
                // Class shed: the loose tenant's whole batch takes an
                // explicit Shed outcome instead of queueing — strict
                // tenants keep routing through the same overload.
                let tt = &mut tally.per_tenant[tenant];
                for q in pending.iter() {
                    tally.shed_queries += 1;
                    tt.shed += 1;
                    tally.registry.add(MetricId::ShedQueries, 0, 1);
                    if let Some(ring) = tally.ring.as_mut() {
                        ring.record(TraceEvent::shed(flush_at_us, q.id, q.size as u64, backlog_us));
                    }
                }
                pending.clear();
                *pending_samples = 0;
                return;
            }
            // Last brownout rung: shed low-priority queries (by the
            // sequence-modulus policy) before routing, each with an
            // explicit Shed outcome — never a silent drop.
            if self.cfg.chaos.brownout && backlog_us >= self.cfg.chaos.brownout_shed_us {
                pending.retain(|q| {
                    if self.cfg.chaos.sheds(backlog_us, scenario::sequence_of(q.id)) {
                        *pending_samples -= q.size as u64;
                        tally.shed_queries += 1;
                        tally.per_tenant[tenant].shed += 1;
                        tally.registry.add(MetricId::ShedQueries, 0, 1);
                        if let Some(ring) = tally.ring.as_mut() {
                            ring.record(TraceEvent::shed(
                                flush_at_us,
                                q.id,
                                q.size as u64,
                                backlog_us,
                            ));
                        }
                        false
                    } else {
                        true
                    }
                });
                if pending.is_empty() {
                    *pending_samples = 0;
                    return;
                }
            }
            let oldest_us = pending[0].arrival_us as f64;
            let sla_remaining = (class.sla_us - (flush_at_us - oldest_us)).max(1.0);
            let samples = *pending_samples;

            // Route under the current epoch's capacity-aware profiles
            // with per-node queue depth visible to Algorithm 2 (the
            // chaos brownout ladder and the tenant's SLA-class pressure
            // ladder both narrow the candidate set on the same cost
            // vector when the backlog gauge crosses their rungs).
            let (idx, exec, start_us, browned_out) = self.route_in_epoch(
                ep,
                samples,
                sla_remaining,
                flush_at_us,
                free_at,
                &degrade_ranks,
                backlog_us,
                class,
                &mut route_completions,
            );
            if browned_out {
                tally.registry.add(MetricId::BrownoutBatches, 0, 1);
            }
            let batch = tally.decisions.len() as u64;
            if let Some(ring) = tally.ring.as_mut() {
                ring.record(TraceEvent::batch_formed(
                    flush_at_us,
                    batch,
                    pending.len() as u64,
                    samples,
                    oldest_us,
                ));
                ring.record(TraceEvent::route_decision(
                    flush_at_us,
                    batch,
                    samples,
                    e as u64,
                    sla_remaining,
                    idx as i32,
                    &route_completions,
                ));
                for &(id, _) in &ep.assignments[idx] {
                    ring.record(TraceEvent::scatter(flush_at_us, batch, id, e as u64));
                }
            }
            let mut done_us;
            let mut final_exec = exec;
            if self.cfg.chaos.timeouts_enabled() {
                // Chaos leg resolution: every scatter leg runs the
                // timeout / hedge / backoff-retry ladder against the
                // fault plan. Every attempt — lost, hedged, or timed
                // out — is charged to its node's virtual ledger, so
                // failed work back-pressures routing exactly like real
                // work and the virtual histogram carries both legs.
                let chaos = self.cfg.chaos;
                let faults = &self.cfg.faults;
                let timeout = chaos.timeout_mult * exec;
                let mut batch_done = f64::NEG_INFINITY;
                for &(id, _) in &ep.assignments[idx] {
                    let slot = self.slot_of(id);
                    tally.registry.add(MetricId::BatchesDispatched, slot, 1);
                    let mut a_start = start_us;
                    let mut attempt = 0u32;
                    let leg_done = loop {
                        let eff = exec * faults.straggler_multiplier(id, a_start);
                        let lost = faults.drops_leg(id, a_start, attempt);
                        free_at[slot] = free_at[slot].max(a_start) + eff;
                        tally.busy_us[slot] += eff;
                        let mut cand = if lost { f64::INFINITY } else { a_start + eff };
                        let deadline = a_start + timeout;
                        // Hedge once, on the first attempt: past the
                        // hedge fraction of the budget, re-issue to the
                        // node's ring successor; first result wins.
                        if attempt == 0
                            && chaos.hedging
                            && cand > a_start + chaos.hedge_frac * timeout
                        {
                            let hedge_to = ep
                                .hedge_next
                                .iter()
                                .find(|&&(n, _)| n == id)
                                .map(|&(_, s)| s);
                            if let Some(h) = hedge_to {
                                let hslot = self.slot_of(h);
                                let hedge_at = a_start + chaos.hedge_frac * timeout;
                                let h_start = free_at[hslot].max(hedge_at);
                                let h_eff = exec * faults.straggler_multiplier(h, h_start);
                                // The hedge is attempt 1 on the target:
                                // a ScatterLoss window (first attempts
                                // only) cannot eat it, a Stall can.
                                let h_lost = faults.drops_leg(h, h_start, 1);
                                free_at[hslot] = free_at[hslot].max(h_start) + h_eff;
                                tally.busy_us[hslot] += h_eff;
                                tally.hedged_legs += 1;
                                tally.registry.add(MetricId::HedgedLegs, hslot, 1);
                                if let Some(ring) = tally.ring.as_mut() {
                                    ring.record(TraceEvent::hedge(hedge_at, batch, id, h));
                                }
                                if !h_lost {
                                    cand = cand.min(h_start + h_eff);
                                }
                            }
                        }
                        if cand <= deadline {
                            break cand;
                        }
                        tally.leg_timeouts += 1;
                        tally.registry.add(MetricId::LegTimeouts, slot, 1);
                        if let Some(ring) = tally.ring.as_mut() {
                            ring.record(TraceEvent::timeout(deadline, batch, id, attempt, timeout));
                        }
                        if attempt >= chaos.max_retries {
                            // Retries exhausted: force completion with
                            // one more clean execution charged at the
                            // deadline, so every batch still finishes
                            // and the total stays invariant.
                            free_at[slot] = free_at[slot].max(deadline) + exec;
                            tally.busy_us[slot] += exec;
                            break deadline + exec;
                        }
                        attempt += 1;
                        tally.leg_retries += 1;
                        tally.registry.add(MetricId::LegRetries, slot, 1);
                        a_start = deadline
                            + chaos.backoff_base_us * (1u64 << (attempt - 1)) as f64;
                    };
                    batch_done = batch_done.max(leg_done);
                }
                done_us = batch_done;
            } else {
                done_us = start_us + exec;
                for &(id, _) in &ep.assignments[idx] {
                    let slot = self.slot_of(id);
                    free_at[slot] = free_at[slot].max(flush_at_us) + exec;
                    tally.registry.add(MetricId::BatchesDispatched, slot, 1);
                    tally.busy_us[slot] += exec;
                }
            }

            // Failure retries: a fail event inside this batch's flight
            // window whose victim is one of its targets restarts the
            // batch — at the failure instant, under the post-failure
            // plan — and the queries carry both legs' latency.
            // Only failures retry: streaming sub-steps and adaptive
            // re-plans keep every in-flight batch valid (its epoch's
            // owners still hold the features' warm state until the
            // flip, and the flip itself is preceded by shipping).
            let mut exec_epoch = e;
            let mut retried = false;
            let mut scan = e;
            while scan < self.events.len() {
                let ev_at = self.events[scan].at_us;
                if ev_at >= done_us {
                    break;
                }
                if let RebalanceAction::Fail(failed) = self.events[scan].action {
                    if self
                        .epoch_at(dyn_epochs, exec_epoch)
                        .assignments[idx]
                        .iter()
                        .any(|&(id, _)| id == failed)
                    {
                        exec_epoch = scan + 1;
                        retried = true;
                        tally.retried_batches += 1;
                        let retry_ep = self.epoch_at(dyn_epochs, exec_epoch);
                        let retry_exec =
                            retry_ep.mappings.mappings[idx].profile.latency_us(samples);
                        let retry_start = retry_ep.assignments[idx]
                            .iter()
                            .map(|&(id, _)| free_at[self.slot_of(id)])
                            .fold(f64::NEG_INFINITY, f64::max)
                            .max(ev_at);
                        done_us = retry_start + retry_exec;
                        final_exec = retry_exec;
                        if let Some(ring) = tally.ring.as_mut() {
                            ring.record(TraceEvent::retry(ev_at, batch, failed, exec_epoch as u64));
                            for &(id, _) in &retry_ep.assignments[idx] {
                                ring.record(TraceEvent::scatter(ev_at, batch, id, exec_epoch as u64));
                            }
                        }
                        for &(id, _) in &retry_ep.assignments[idx] {
                            let slot = self.slot_of(id);
                            free_at[slot] = free_at[slot].max(ev_at) + retry_exec;
                            tally.registry.add(MetricId::BatchesDispatched, slot, 1);
                            tally.busy_us[slot] += retry_exec;
                        }
                    }
                }
                scan += 1;
            }

            let path = self.paths[idx];
            tally.decisions.push(path);
            tally.epoch_batches[e] += 1;
            if retried {
                tally.retried_queries += pending.len() as u64;
            }
            if let Some(ring) = tally.ring.as_mut() {
                ring.record(TraceEvent::execute(
                    done_us - final_exec,
                    batch,
                    exec_epoch as u64,
                    done_us,
                ));
            }
            tally.last_done_us = tally.last_done_us.max(done_us);
            let accuracy = self.cfg.accuracy.of(path) as f64;
            let label = &self.labels[idx];
            let now = Instant::now();
            let mut specs = Vec::with_capacity(pending.len());
            let mut queries = Vec::with_capacity(pending.len());
            let mut total = 0usize;
            for q in pending.iter() {
                let virtual_latency = done_us - q.arrival_us as f64;
                tally.virtual_histogram.record(virtual_latency);
                tally.slack.record((class.sla_us - virtual_latency).max(0.0));
                let tt = &mut tally.per_tenant[tenant];
                if virtual_latency > class.sla_us {
                    tally.virtual_violations += 1;
                    tt.violations += 1;
                    tally.registry.add(MetricId::SlaViolations, 0, 1);
                }
                tt.completed += 1;
                tt.samples += q.size as u64;
                tt.latency_sum_us += virtual_latency;
                tt.vhist.record(virtual_latency);
                tally.correct_samples += q.size as f64 * accuracy;
                tally.usage.record(label, q.size as u64);
                tally.routed += 1;
                if let Some(ring) = tally.ring.as_mut() {
                    ring.record(TraceEvent::complete(done_us, q.id, batch, virtual_latency));
                }
                specs.push((q.id, q.size as u64));
                total += q.size;
                queries.push(WorkQuery {
                    size: q.size as u64,
                    real_arrival: if self.cfg.pace_ingress {
                        start + Duration::from_micros(q.arrival_us)
                    } else {
                        now
                    },
                });
            }
            // Real execution happens once, under the final (post-retry)
            // epoch's pruned assignment — the wasted attempt exists
            // only in virtual time, so sharded math and cache state
            // stay deterministic.
            let assignment = &self.epoch_at(dyn_epochs, exec_epoch).assignments[idx];
            let shared = Arc::new(BatchShared {
                path,
                specs,
                queries,
                total,
                batch,
                vstart_us: done_us - final_exec,
                vdone_us: done_us,
                partials: (0..assignment.len()).map(|_| Mutex::new(None)).collect(),
                pending: AtomicUsize::new(assignment.len()),
            });
            for (slot, (node_id, feats)) in assignment.iter().enumerate() {
                let qslot = self.slot_of(*node_id);
                // push only fails when a panicking worker closed its
                // queue; the join in serve() surfaces that panic.
                let _ = node_queues[qslot].push(ScatterJob {
                    shared: Arc::clone(&shared),
                    slot,
                    features: Arc::clone(feats),
                });
            }
            *dispatched += 1;
            pending.clear();
            *pending_samples = 0;
        };

        // Earliest batch deadline among tenants with pending queries
        // (ties keep the lowest tenant index — the scan is ascending).
        let earliest_deadline = |pending: &[Vec<&Query>]| -> Option<(f64, usize)> {
            let mut due: Option<(f64, usize)> = None;
            for (t, p) in pending.iter().enumerate() {
                if let Some(first) = p.first() {
                    let d = first.arrival_us as f64 + self.cfg.max_batch_wait_us;
                    if due.is_none_or(|(bd, _)| d < bd) {
                        due = Some((d, t));
                    }
                }
            }
            due
        };

        for q in trace {
            let arrival_us = q.arrival_us as f64;
            // Deadline-triggered flushes strictly before this arrival,
            // across all tenants, in (deadline, tenant) order — each
            // flush walks the churn schedule up to its own instant.
            while let Some((deadline, t)) = earliest_deadline(&pending) {
                if arrival_us <= deadline {
                    break;
                }
                if self.cfg.pace_ingress {
                    sleep_until(start, deadline);
                }
                advance_epochs!(deadline);
                flush(
                    &mut pending[t],
                    &mut pending_samples[t],
                    t,
                    deadline,
                    &mut tally,
                    &mut free_at,
                    &mut cur_epoch,
                    &mut dispatched,
                    &mut dyn_epochs,
                    &mut dyn_event_at,
                    &mut last_adaptive_us,
                );
            }
            if self.cfg.pace_ingress {
                sleep_until(start, arrival_us);
            }
            let t = scenario::tenant_of(q.id) as usize;
            // Size-triggered flush: don't blow the batch budget by adding.
            if !pending[t].is_empty()
                && pending_samples[t] + q.size as u64 > self.cfg.max_batch_samples as u64
            {
                advance_epochs!(arrival_us);
                flush(
                    &mut pending[t],
                    &mut pending_samples[t],
                    t,
                    arrival_us,
                    &mut tally,
                    &mut free_at,
                    &mut cur_epoch,
                    &mut dispatched,
                    &mut dyn_epochs,
                    &mut dyn_event_at,
                    &mut last_adaptive_us,
                );
            }
            pending[t].push(q);
            pending_samples[t] += q.size as u64;
            if let Some(ring) = tally.ring.as_mut() {
                ring.record(TraceEvent::enqueue(arrival_us, q.id, q.size as u64));
            }
            if pending_samples[t] >= self.cfg.max_batch_samples as u64 {
                advance_epochs!(arrival_us);
                flush(
                    &mut pending[t],
                    &mut pending_samples[t],
                    t,
                    arrival_us,
                    &mut tally,
                    &mut free_at,
                    &mut cur_epoch,
                    &mut dispatched,
                    &mut dyn_epochs,
                    &mut dyn_event_at,
                    &mut last_adaptive_us,
                );
            }
        }
        // Final flushes, earliest deadline first.
        while let Some((deadline, t)) = earliest_deadline(&pending) {
            if self.cfg.pace_ingress {
                sleep_until(start, deadline);
            }
            advance_epochs!(deadline);
            flush(
                &mut pending[t],
                &mut pending_samples[t],
                t,
                deadline,
                &mut tally,
                &mut free_at,
                &mut cur_epoch,
                &mut dispatched,
                &mut dyn_epochs,
                &mut dyn_event_at,
                &mut last_adaptive_us,
            );
        }
        // Process any trailing events so every epoch gets its boundary
        // snapshot even when the schedule outlives the trace.
        advance_epochs!(f64::INFINITY);
        // Publish the planner's overlay epochs so `replay_spec` and
        // `assemble` see the merged schedule this serve actually ran.
        *self.adaptive.lock() = AdaptiveState {
            epochs: dyn_epochs,
            at_us: dyn_event_at,
        };
        tally
    }

    /// Algorithm 2 in the current epoch: per path, expected execution
    /// from the capacity-aware slowest-shard profile, plus the queueing
    /// wait of its most-backlogged scatter target. When the brownout
    /// controller's backlog gauge crosses a narrowing rung, degraded
    /// candidates are masked to `+inf` *before* selection (see
    /// [`ChaosConfig::brownout_mask`]); the flushing tenant's SLA-class
    /// pressure ladder ([`class_pressure_mask`]) then narrows the same
    /// cost vector on its own thresholds, so a loose class degrades to
    /// cheaper paths while a strict class keeps the full candidate set.
    /// Returns `(mapping idx, exec_us, start_us, browned_out)` with
    /// `start_us >= now_us`; fills `completions` with every candidate's
    /// (post-mask) scored completion so the flight recorder can publish
    /// the rejected costs alongside the chosen one.
    #[allow(clippy::too_many_arguments)]
    fn route_in_epoch(
        &self,
        ep: &ClusterEpoch,
        samples: u64,
        sla_remaining_us: f64,
        now_us: f64,
        free_at: &[f64],
        degrade_rank: &[u32],
        backlog_us: f64,
        class: &SlaClass,
        completions: &mut Vec<f64>,
    ) -> (usize, f64, f64, bool) {
        let n = ep.mappings.mappings.len();
        let mut execs = Vec::with_capacity(n);
        let mut starts = Vec::with_capacity(n);
        completions.clear();
        for i in 0..n {
            let exec = ep.mappings.mappings[i].profile.latency_us(samples);
            let busiest = ep.assignments[i]
                .iter()
                .map(|&(id, _)| free_at[self.slot_of(id)])
                .fold(f64::NEG_INFINITY, f64::max);
            let start = busiest.max(now_us);
            execs.push(exec);
            starts.push(start);
            completions.push((start - now_us) + exec);
        }
        let masked = self
            .cfg
            .chaos
            .brownout_mask(degrade_rank, backlog_us, completions);
        class_pressure_mask(
            degrade_rank,
            backlog_us,
            class.narrow_backlog_us,
            class.table_only_backlog_us,
            completions,
        );
        let idx = select_mapping(&ep.mappings, completions, sla_remaining_us, true)
            .expect("mapping set is never empty");
        (idx, execs[idx], starts[idx], masked)
    }

    /// Closes the newest snapshotted epoch's metric window at
    /// `boundary_us`: folds its cache-tier deltas into the counters,
    /// freezes the point-in-time gauges (virtual queue depth, FLOPs
    /// occupancy, SLA-slack percentiles), pushes one registry snapshot,
    /// and resets the per-epoch accumulators. Called with the live
    /// `free_at` backlog at churn barriers and with an empty slice at
    /// end-of-serve (where the backlog is drained by definition).
    fn close_epoch_metrics(
        &self,
        tally: &mut DispatchTally,
        free_at: &[f64],
        boundary_us: f64,
        dyn_epochs: &[ClusterEpoch],
    ) {
        let closing = tally.epoch_snapshots.len() - 1;
        let span = (boundary_us - self.epoch_at(dyn_epochs, closing).start_us).max(1.0);
        let zeros: Vec<CacheStats> = Vec::new();
        let prev = if closing == 0 {
            &zeros
        } else {
            &tally.epoch_snapshots[closing - 1]
        };
        for (slot, now) in tally.epoch_snapshots[closing].iter().enumerate() {
            let before = prev.get(slot).copied().unwrap_or_default();
            let d = stats_delta(now, &before);
            tally.registry.add(MetricId::StaticTierHits, slot, d.encoder_hits);
            tally.registry.add(MetricId::DynamicTierHits, slot, d.dynamic_hits);
            tally.registry.add(MetricId::DiskTierHits, slot, d.disk_hits);
            tally.registry.add(MetricId::TierMisses, slot, d.encoder_misses);
            let backlog = free_at.get(slot).map_or(0.0, |&f| (f - boundary_us).max(0.0));
            tally.registry.set(MetricId::QueueDepthUs, slot, backlog as u64);
            let permille = (tally.busy_us[slot].min(span) * 1000.0 / span) as u64;
            tally.registry.set(MetricId::FlopsOccupancyPermille, slot, permille);
        }
        let slack = tally.slack.summary();
        tally.registry.set(MetricId::SlaSlackP50Us, 0, slack.p50_us as u64);
        tally.registry.set(MetricId::SlaSlackP95Us, 0, slack.p95_us as u64);
        tally.registry.set(MetricId::SlaSlackP99Us, 0, slack.p99_us as u64);
        if let Some(ring) = tally.ring.as_ref() {
            tally.registry.set(MetricId::DroppedTraceEvents, 0, ring.dropped_events());
        }
        tally.epoch_metrics.push(tally.registry.snapshot());
        for b in &mut tally.busy_us {
            *b = 0.0;
        }
        tally.slack = LatencyHistogram::with_subs_per_octave(self.cfg.histogram_subs);
    }

    fn assemble(
        &self,
        mut tally: DispatchTally,
        mut merged: MergerReport,
        per_node_batches: Vec<u64>,
        worker_rings: Vec<(String, EventRing)>,
        start: Instant,
    ) -> ClusterReport {
        // Assemble the recording first so the dropped-events metric in
        // the final epoch snapshot covers every track, not just the
        // dispatcher's.
        let trace = self.cfg.recorder.enabled.then(|| {
            let mut rec = TraceRecording::new(self.labels.clone());
            if let Some(ring) = tally.ring.take() {
                rec.push_ring("dispatcher", ring);
            }
            for (name, ring) in worker_rings {
                rec.push_ring(name, ring);
            }
            if let Some(ring) = merged.ring.take() {
                rec.push_ring("merger", ring);
            }
            rec
        });
        if let Some(rec) = &trace {
            tally.registry.set(MetricId::DroppedTraceEvents, 0, rec.total_dropped());
        }
        let per_node_cache: Vec<CacheStats> =
            self.nodes.iter().map(|n| n.model.cache().stats()).collect();
        // Final epoch closes at end-of-serve: its delta runs from the
        // last boundary snapshot to the final counters, and its metric
        // window closes at the last virtual completion. The epoch index
        // space merges the static schedule with any overlay epochs the
        // adaptive planner opened during this serve.
        let adaptive = self.adaptive.lock();
        tally.epoch_snapshots.push(per_node_cache.clone());
        let end_us = tally.last_done_us;
        self.close_epoch_metrics(&mut tally, &[], end_us, &adaptive.epochs);
        let total_epochs = self.epochs.len() + adaptive.epochs.len();
        let mut epochs = Vec::with_capacity(total_epochs);
        let mut prev: Vec<CacheStats> = self.nodes.iter().map(|_| CacheStats::default()).collect();
        for (e, snapshot) in tally.epoch_snapshots.iter().enumerate() {
            let deltas = snapshot
                .iter()
                .zip(prev.iter())
                .map(|(now, before)| stats_delta(now, before))
                .collect();
            let ep = self.epoch_at(&adaptive.epochs, e);
            epochs.push(EpochReport {
                start_us: ep.start_us,
                live: ep.live.clone(),
                batches: tally.epoch_batches[e],
                per_node_cache: deltas,
                metrics: tally.epoch_metrics.get(e).cloned().unwrap_or_default(),
            });
            prev = snapshot.clone();
        }
        let cache = per_node_cache
            .iter()
            .fold(CacheStats::default(), |acc, s| acc.merged(s));
        let tenants = tally
            .per_tenant
            .drain(..)
            .enumerate()
            .map(|(t, tt)| TenantReport {
                tenant: t as u32,
                sla_us: self.cfg.tenants.class_of(t as u32, self.cfg.sla_us).sla_us,
                completed: tt.completed,
                samples: tt.samples,
                shed_queries: tt.shed,
                virtual_sla_violations: tt.violations,
                latency_sum_us: tt.latency_sum_us,
                virtual_histogram: tt.vhist,
            })
            .collect();
        let final_plan = &self.epoch_at(&adaptive.epochs, total_epochs - 1).plan;
        let outcome = ServingOutcome {
            policy: format!(
                "cluster:{}@{}n/{}w",
                self.cfg.route, self.cfg.nodes, self.cfg.workers_per_node
            ),
            completed: merged.completed,
            samples: merged.samples,
            correct_samples: tally.correct_samples,
            span_s: merged.last_done.duration_since(start).as_secs_f64(),
            sla_violations: tally.virtual_violations,
            mean_latency_us: merged.histogram.mean_us(),
            p95_latency_us: merged.histogram.quantile_us(0.95),
            p99_latency_us: merged.histogram.quantile_us(0.99),
            usage: tally.usage,
        };
        ClusterReport {
            outcome,
            cache,
            node_ids: self.node_ids(),
            per_node_cache,
            per_node_features: self
                .nodes
                .iter()
                .map(|n| final_plan.features_of(n.id).len())
                .collect(),
            per_node_batches,
            histogram: merged.histogram,
            virtual_histogram: tally.virtual_histogram,
            virtual_sla_violations: tally.virtual_violations,
            measured_sla_violations: merged.measured_violations,
            routed_queries: tally.routed,
            path_decisions: tally.decisions,
            retried_batches: tally.retried_batches,
            retried_queries: tally.retried_queries,
            shed_queries: tally.shed_queries,
            leg_timeouts: tally.leg_timeouts,
            hedged_legs: tally.hedged_legs,
            leg_retries: tally.leg_retries,
            migration_steps: tally.migration_steps,
            adaptive_replans: tally.adaptive_replans,
            tenants,
            epochs,
            checksum: merged.checksum,
            nodes: self.cfg.nodes,
            trace,
        }
    }
}

/// Convenience: build a cluster and serve once.
///
/// # Errors
///
/// Propagates [`Cluster::new`] and [`Cluster::serve`] errors.
pub fn serve_cluster(cfg: ClusterConfig) -> Result<ClusterReport> {
    Cluster::new(cfg)?.serve()
}

/// The default per-node capacity lookup: entry by node id, falling back
/// to the uniform `virtual_gflops` budget.
fn capacity_of(cfg: &ClusterConfig, id: u32) -> f64 {
    cfg.node_capacity_gflops
        .get(id as usize)
        .copied()
        .filter(|&c| c > 0.0)
        .unwrap_or(cfg.virtual_gflops)
}

/// Per-tier counter delta for a `NodeExecute` event, ordered
/// `[static, dynamic, disk, miss]`. The sharded cache is shared by the
/// node's whole worker pool, so a concurrent worker can inflate (never
/// deflate) the counters between the two reads; saturate rather than
/// panic.
fn tier_delta(after: &CacheStats, before: &CacheStats) -> [u32; 4] {
    let d = |a: u64, b: u64| u32::try_from(a.saturating_sub(b)).unwrap_or(u32::MAX);
    [
        d(after.encoder_hits, before.encoder_hits),
        d(after.dynamic_hits, before.dynamic_hits),
        d(after.disk_hits, before.disk_hits),
        d(after.encoder_misses, before.encoder_misses),
    ]
}

/// Field-wise difference of two cumulative counter snapshots.
fn stats_delta(now: &CacheStats, before: &CacheStats) -> CacheStats {
    CacheStats {
        encoder_hits: now.encoder_hits - before.encoder_hits,
        encoder_misses: now.encoder_misses - before.encoder_misses,
        decoder_lookups: now.decoder_lookups - before.decoder_lookups,
        dynamic_hits: now.dynamic_hits - before.dynamic_hits,
        disk_hits: now.disk_hits - before.disk_hits,
        evictions: now.evictions - before.evictions,
    }
}

/// Path order the mapping builder emits for a policy.
fn path_order(route: RoutePolicy) -> Vec<PathKind> {
    match route {
        RoutePolicy::MpRec => vec![PathKind::Hybrid, PathKind::Dhe, PathKind::Table],
        RoutePolicy::Fixed(p) => vec![p],
    }
}

/// The pruned scatter assignment of one path under one plan: DHE-cached
/// features go to their shard owner (that node's cache holds their warm
/// state); the target set is exactly those owners. A path touching no
/// per-node cache state (table-only) folds onto a single designated
/// executor — the owner of feature 0 — because table weights are
/// replicated everywhere. Table features whose owner is already a
/// target stay with it; the rest fold onto the first target.
fn path_assignment(
    model: &RuntimeModel,
    plan: &FeatureShardPlan,
    path: PathKind,
) -> Vec<(u32, Arc<Vec<usize>>)> {
    let features = plan.num_features();
    let mut targets: Vec<u32> = (0..features)
        .filter(|&f| model.path_uses_dhe(path, f))
        .map(|f| plan.node_of(f))
        .collect();
    targets.sort_unstable();
    targets.dedup();
    if targets.is_empty() {
        targets.push(plan.node_of(0));
    }
    let mut groups: Vec<(u32, Vec<usize>)> =
        targets.iter().map(|&t| (t, Vec::new())).collect();
    for f in 0..features {
        // A miss means a replicated table feature whose owner is not a
        // target: fold it onto the first (smallest-id) target.
        let slot = targets.binary_search(&plan.node_of(f)).unwrap_or_default();
        groups[slot].1.push(f);
    }
    groups
        .into_iter()
        .map(|(id, feats)| (id, Arc::new(feats)))
        .collect()
}

/// Builds one epoch: the pruned per-path assignments and the
/// capacity-aware slowest-shard mapping set. Per path, the per-sample
/// cost is the max over its scatter targets of the target's embedding
/// FLOPs scaled by `virtual_gflops / capacity`, plus the shared top-MLP
/// merge; the per-batch overhead adds one network hop for a pruned
/// single-target scatter and two for a fan-out (zero on a colocated
/// never-churned single-node cluster).
///
/// When the epoch was opened by a node join (`joined`), every path that
/// scatters DHE-cached features to the joiner gets
/// [`ClusterConfig::disk_hit_us`] added per sample: the joiner's RAM
/// tiers are cold and its warm-started lookups are served from the
/// persistent disk tier until traffic promotes them.
fn build_epoch(
    cfg: &ClusterConfig,
    nodes: &[ClusterNode],
    start_us: f64,
    ring: &HashRing,
    plan: &FeatureShardPlan,
    joined: Option<u32>,
) -> Result<ClusterEpoch> {
    let model = &nodes[0].model;
    let rate = cfg.virtual_gflops.max(1e-6) * 1e3;
    let distributed = cfg.nodes > 1 || !cfg.churn.is_empty();
    let capacity = |id: u32| {
        nodes
            .iter()
            .find(|n| n.id == id)
            .map(|n| n.capacity_gflops)
            .unwrap_or(cfg.virtual_gflops)
    };
    let order = path_order(cfg.route);
    let assignments: Vec<Vec<(u32, Arc<Vec<usize>>)>> = order
        .iter()
        .map(|&p| path_assignment(model, plan, p))
        .collect();
    let assignment_of = |path: PathKind| {
        &assignments[order
            .iter()
            .position(|&p| p == path)
            .expect("builder only asks for routed paths")]
    };
    let (mut mappings, paths) = build_path_mappings(
        &cfg.model,
        cfg.route,
        cfg.accuracy,
        |path| {
            let targets = assignment_of(path).len();
            let hops = if !distributed {
                0.0
            } else if targets == 1 {
                1.0
            } else {
                2.0
            };
            cfg.dispatch_overhead_us + hops * cfg.net_overhead_us
        },
        |path| {
            let slowest = assignment_of(path)
                .iter()
                .map(|(id, feats)| {
                    model.flops_per_sample_features(path, feats)
                        * (cfg.virtual_gflops / capacity(*id))
                })
                .fold(0.0f64, f64::max);
            (slowest + model.top_flops_per_sample()) / rate
        },
    )?;
    debug_assert_eq!(paths, order);
    if let Some(j) = joined {
        if cfg.disk_hit_us > 0.0 {
            for (i, &path) in order.iter().enumerate() {
                let cold = assignments[i].iter().any(|(id, feats)| {
                    *id == j && feats.iter().any(|&f| model.path_uses_dhe(path, f))
                });
                if cold {
                    mappings.mappings[i].profile =
                        mappings.mappings[i].profile.plus_per_sample(cfg.disk_hit_us);
                }
            }
        }
    }
    // Hedge targets are a pure ring property: each live node's next
    // distinct ring neighbour, frozen per epoch so the twin replay can
    // consume them from the spec without any ring logic of its own.
    let hedge_next = plan
        .nodes()
        .iter()
        .filter_map(|&n| ring.successor(n).map(|s| (n, s)))
        .collect();
    Ok(ClusterEpoch {
        start_us,
        live: plan.nodes().to_vec(),
        plan: plan.clone(),
        mappings,
        assignments,
        hedge_next,
    })
}

/// Closes a queue if the owning thread unwinds, so a panicking node
/// worker (or merger) can never leave the front-end (or a node worker)
/// blocked on a bounded `push` with no consumer.
struct CloseOnPanic<'a, T>(&'a BoundedQueue<T>);

impl<T> Drop for CloseOnPanic<'_, T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.close();
        }
    }
}

fn node_worker_loop(
    queue: &BoundedQueue<ScatterJob>,
    merge: &BoundedQueue<Arc<BatchShared>>,
    model: &RuntimeModel,
    progress: &Progress,
    node_id: u32,
    recorder: TraceConfig,
) -> NodeWorkerReport {
    let _close_guard = CloseOnPanic(queue);
    let _close_merge_guard = CloseOnPanic(merge);
    let _fail_guard = FailOnPanic(progress);
    let mut report = NodeWorkerReport {
        batches: 0,
        error: None,
        // Preallocated before the first batch so steady-state recording
        // never allocates.
        ring: recorder.ring(),
    };
    let mut scratch = model.make_scratch();
    while let Some(job) = queue.pop() {
        let tiers_before = if report.ring.is_some() {
            model.cache().stats()
        } else {
            CacheStats::default()
        };
        let mut partial = Matrix::default();
        match model.pool_features_into(
            job.shared.path,
            &job.shared.specs,
            &job.features,
            &mut scratch,
            &mut partial,
        ) {
            Ok(_) => {
                *job.shared.partials[job.slot].lock() = Some(partial);
                if let Some(ring) = report.ring.as_mut() {
                    let tiers = tier_delta(&model.cache().stats(), &tiers_before);
                    ring.record(TraceEvent::node_execute(
                        job.shared.vstart_us,
                        job.shared.batch,
                        node_id,
                        job.shared.total as u64,
                        job.shared.vdone_us,
                        tiers,
                    ));
                }
                report.batches += 1;
                if job.shared.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                    // Last shard done: hand the batch to the merger
                    // (push only fails if the merger died; its join
                    // surfaces that).
                    let _ = merge.push(Arc::clone(&job.shared));
                }
            }
            Err(e) => {
                report.error = Some(format!(
                    "node {node_id} batch on path {}: {e}",
                    job.shared.path
                ));
                progress.fail();
                // Keep draining so the front-end's bounded pushes always
                // make progress; the error surfaces after join.
                while queue.pop().is_some() {}
                break;
            }
        }
    }
    report
}

#[allow(clippy::too_many_arguments)]
fn merger_loop(
    queue: &BoundedQueue<Arc<BatchShared>>,
    model: &RuntimeModel,
    progress: &Progress,
    sla_us: f64,
    histogram_subs: u32,
    emb_dim: usize,
    start: Instant,
    recorder: TraceConfig,
) -> MergerReport {
    let _close_guard = CloseOnPanic(queue);
    let _fail_guard = FailOnPanic(progress);
    let mut report = MergerReport {
        histogram: LatencyHistogram::with_subs_per_octave(histogram_subs),
        completed: 0,
        samples: 0,
        measured_violations: 0,
        checksum: 0.0,
        last_done: start,
        error: None,
        ring: recorder.ring(),
    };
    let mut pooled = Matrix::default();
    let mut top = MlpScratch::default();
    while let Some(batch) = queue.pop() {
        pooled.resize_zeroed(batch.total, emb_dim);
        let mut failed = None;
        for slot in &batch.partials {
            let guard = slot.lock();
            let partial = guard
                .as_ref()
                .expect("pending hit zero, all partials present");
            if let Err(e) = pooled.add_assign(partial) {
                failed = Some(format!("gather add: {e}"));
                break;
            }
        }
        let checksum = match failed {
            None => match model.score_pooled(&pooled, &mut top) {
                Ok(c) => c,
                Err(e) => {
                    report.error = Some(format!("merge top-mlp: {e}"));
                    progress.fail();
                    while queue.pop().is_some() {}
                    break;
                }
            },
            Some(msg) => {
                report.error = Some(msg);
                progress.fail();
                while queue.pop().is_some() {}
                break;
            }
        };
        let now = Instant::now();
        for q in &batch.queries {
            let latency_us = now.saturating_duration_since(q.real_arrival).as_secs_f64() * 1e6;
            report.histogram.record(latency_us);
            if latency_us > sla_us {
                report.measured_violations += 1;
            }
            report.completed += 1;
            report.samples += q.size;
        }
        report.checksum += checksum;
        report.last_done = now;
        if let Some(ring) = report.ring.as_mut() {
            ring.record(TraceEvent::merge(batch.vdone_us, batch.batch, batch.total as u64));
        }
        progress.batch_done();
    }
    report
}

fn sleep_until(start: Instant, virtual_us: f64) {
    let target = start + Duration::from_secs_f64(virtual_us / 1e6);
    let now = Instant::now();
    if target > now {
        std::thread::sleep(target - now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(nodes: usize) -> ClusterConfig {
        ClusterConfig {
            nodes,
            workers_per_node: 1,
            cache_shards: 4,
            trace: QueryTraceConfig {
                num_queries: 300,
                mean_size: 4.0,
                sigma: 1.0,
                max_size: 16,
                qps: 5000.0,
                poisson_arrivals: true,
            },
            model: RuntimeModelConfig {
                sparse_features: 4,
                rows_per_feature: 500,
                emb_dim: 4,
                dhe_k: 8,
                dhe_dnn: 8,
                dhe_h: 1,
                top_hidden: vec![8],
                encoder_cache_bytes: 1024,
                decoder_centroids: 8,
                dynamic_cache_entries: 256,
                profile_accesses: 2_000,
                ..RuntimeModelConfig::default()
            },
            max_batch_samples: 32,
            ..ClusterConfig::default()
        }
    }

    /// The canonical fail-at-40% / join-at-70% schedule for `cfg`.
    fn with_churn(mut cfg: ClusterConfig) -> ClusterConfig {
        let span =
            scenario::nominal_span_us(cfg.trace.num_queries, cfg.trace.qps);
        cfg.churn = scenario::node_churn(cfg.nodes, span);
        cfg
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(matches!(
            Cluster::new(ClusterConfig {
                nodes: 0,
                ..quick_cfg(1)
            }),
            Err(RuntimeError::BadConfig(_))
        ));
        assert!(matches!(
            Cluster::new(ClusterConfig {
                workers_per_node: 0,
                ..quick_cfg(2)
            }),
            Err(RuntimeError::BadConfig(_))
        ));
    }

    #[test]
    fn rejects_inconsistent_churn_schedules() {
        let bad = |churn: Vec<ChurnEvent>| {
            assert!(matches!(
                Cluster::new(ClusterConfig {
                    churn,
                    ..quick_cfg(2)
                }),
                Err(RuntimeError::BadConfig(_))
            ));
        };
        // Failing a node that is not live.
        bad(vec![ChurnEvent {
            at_us: 100.0,
            node: 9,
            action: ChurnAction::Fail,
        }]);
        // Joining a node that is already live.
        bad(vec![ChurnEvent {
            at_us: 100.0,
            node: 1,
            action: ChurnAction::Join,
        }]);
        // Failing every node.
        bad(vec![
            ChurnEvent {
                at_us: 100.0,
                node: 0,
                action: ChurnAction::Fail,
            },
            ChurnEvent {
                at_us: 200.0,
                node: 1,
                action: ChurnAction::Fail,
            },
        ]);
        // Out-of-order events.
        bad(vec![
            ChurnEvent {
                at_us: 200.0,
                node: 1,
                action: ChurnAction::Fail,
            },
            ChurnEvent {
                at_us: 100.0,
                node: 2,
                action: ChurnAction::Join,
            },
        ]);
        // Recycling a failed node's id.
        bad(vec![
            ChurnEvent {
                at_us: 100.0,
                node: 1,
                action: ChurnAction::Fail,
            },
            ChurnEvent {
                at_us: 200.0,
                node: 1,
                action: ChurnAction::Join,
            },
        ]);
    }

    #[test]
    fn schedule_builders_extend_and_validate() {
        let mut cluster = Cluster::new(quick_cfg(3)).unwrap();
        cluster.fail_node(2, 1_000.0).unwrap();
        cluster.add_node(3, 2_000.0).unwrap();
        assert_eq!(cluster.epochs().len(), 3);
        assert_eq!(cluster.node_ids(), vec![0, 1, 2, 3]);
        // Out-of-order extension is rejected and leaves the schedule
        // untouched.
        assert!(cluster.fail_node(0, 1_500.0).is_err());
        assert_eq!(cluster.epochs().len(), 3);
        assert_eq!(cluster.config().churn.len(), 2);
        // Recycling the failed node's id is rejected here too (the
        // builder must never produce a config Cluster::new would
        // refuse, and a "rejoined" replica would carry a warm cache).
        assert!(matches!(
            cluster.add_node(2, 3_000.0),
            Err(RuntimeError::BadConfig(_))
        ));
        assert_eq!(cluster.config().churn.len(), 2);
        assert!(
            Cluster::new(cluster.config().clone()).is_ok(),
            "builder-produced configs round-trip through Cluster::new"
        );
    }

    #[test]
    fn shard_plan_covers_every_feature_exactly_once() {
        let plan = FeatureShardPlan::for_cluster(4, 64, 26);
        let mut seen = [false; 26];
        for &n in plan.nodes() {
            for &f in plan.features_of(n) {
                assert!(!seen[f], "feature {f} owned twice");
                seen[f] = true;
                assert_eq!(plan.node_of(f), n);
            }
        }
        assert!(seen.iter().all(|&s| s), "every feature owned");
        assert_eq!(plan.shard_sizes().iter().sum::<usize>(), 26);
    }

    #[test]
    fn rebalance_epochs_track_the_ring() {
        let cluster = Cluster::new(with_churn(quick_cfg(3))).unwrap();
        let features = cluster.config().model.sparse_features;
        let e = cluster.epochs();
        assert_eq!(e.len(), 3);
        assert_eq!(e[0].live, vec![0, 1, 2]);
        assert_eq!(e[1].live, vec![0, 1], "node 2 failed");
        assert_eq!(e[2].live, vec![0, 1, 3], "node 3 joined");
        for ep in e {
            assert_eq!(
                ep.plan.shard_sizes().iter().sum::<usize>(),
                features,
                "every epoch covers the feature space"
            );
        }
        assert!(e[1].plan.features_of(2).is_empty());
        // Features that never belonged to the churned nodes never move
        // (consistent hashing's minimal-remap guarantee, end to end).
        for f in 0..features {
            let (o0, o1) = (e[0].plan.node_of(f), e[1].plan.node_of(f));
            if o0 != 2 {
                assert_eq!(o0, o1, "feature {f} moved off a survivor");
            }
            let o2 = e[2].plan.node_of(f);
            if o2 != 3 {
                assert_eq!(o1, o2, "feature {f} moved between survivors");
            }
        }
    }

    #[test]
    fn table_scatter_is_pruned_to_one_node() {
        let cluster = Cluster::new(quick_cfg(4)).unwrap();
        let e0 = &cluster.epochs()[0];
        let idx_of = |p: PathKind| cluster.paths().iter().position(|&q| q == p).unwrap();
        // Table weights are replicated: one designated executor.
        assert_eq!(e0.targets(idx_of(PathKind::Table)).len(), 1);
        // DHE paths scatter to every owner of a DHE feature.
        let dhe_targets = e0.targets(idx_of(PathKind::Dhe));
        assert!(dhe_targets.len() > 1, "4 features over 4 nodes fan out");
        // Hybrid only fans out to owners of the DHE half.
        let hybrid_targets = e0.targets(idx_of(PathKind::Hybrid));
        assert!(hybrid_targets.len() <= dhe_targets.len());
        // Every assignment covers the whole feature space exactly once.
        for (i, _) in cluster.paths().iter().enumerate() {
            let mut seen = [false; 4];
            for (_, feats) in &e0.assignments[i] {
                for &f in feats.iter() {
                    assert!(!seen[f]);
                    seen[f] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn cluster_serves_every_query_exactly_once() {
        let cluster = Cluster::new(quick_cfg(3)).unwrap();
        let report = cluster.serve().unwrap();
        assert_eq!(report.outcome.completed, 300);
        assert_eq!(report.routed_queries, 300);
        assert_eq!(report.histogram.count(), 300);
        assert_eq!(report.virtual_histogram.count(), 300);
        assert_eq!(report.outcome.usage.queries.values().sum::<u64>(), 300);
        assert!(report.outcome.samples > 0);
        assert!(report.checksum.is_finite());
        assert_eq!(report.per_node_cache.len(), 3);
        assert_eq!(report.per_node_features.iter().sum::<usize>(), 4);
        // Pruned scatter: each batch reaches exactly its path's target
        // set, so total jobs = sum of target-set sizes per decision.
        let e0 = &cluster.epochs()[0];
        let expected_jobs: u64 = report
            .path_decisions
            .iter()
            .map(|&p| {
                let idx = cluster.paths().iter().position(|&q| q == p).unwrap();
                e0.assignments[idx].len() as u64
            })
            .sum();
        assert_eq!(
            report.per_node_batches.iter().sum::<u64>(),
            expected_jobs,
            "jobs match the pruned scatter plan"
        );
        assert!(
            expected_jobs < report.path_decisions.len() as u64 * 3,
            "pruning must beat scatter-to-everyone"
        );
    }

    #[test]
    fn single_node_cluster_matches_the_engine_checksum() {
        // nodes=1 collapses pruned scatter/gather to the single-node
        // execute path: same batching, same routing profiles, same
        // backlog model, same math.
        let cluster = Cluster::new(ClusterConfig {
            nodes: 1,
            net_overhead_us: 0.0,
            ..quick_cfg(1)
        })
        .unwrap();
        let c = cluster.serve().unwrap();
        let e = crate::engine::serve(crate::engine::RuntimeConfig {
            workers: 1,
            cache_shards: 4,
            trace: cluster.config().trace,
            model: cluster.config().model.clone(),
            max_batch_samples: 32,
            ..crate::engine::RuntimeConfig::default()
        })
        .unwrap();
        assert_eq!(c.outcome.completed, e.outcome.completed);
        assert_eq!(c.outcome.samples, e.outcome.samples);
        assert_eq!(c.path_decisions, e.path_decisions);
        assert_eq!(c.outcome.usage, e.outcome.usage);
        assert_eq!(
            c.virtual_sla_violations, e.virtual_sla_violations,
            "identical virtual completions"
        );
        assert!(
            (c.checksum - e.checksum).abs() <= 1e-6 * (1.0 + e.checksum.abs()),
            "cluster {} vs engine {}",
            c.checksum,
            e.checksum
        );
        assert_eq!(c.cache, e.cache, "same cache state on one node");
    }

    #[test]
    fn scatter_gather_matches_engine_math_across_node_counts() {
        // The synchronous scatter/gather path: partial pools summed
        // across the pruned target set equal full execution, for every
        // path and any node count.
        let single = RuntimeModel::build(&quick_cfg(1).model, 4, 42).unwrap();
        let queries = [(0u64, 6u64), (1, 3), (2, 8)];
        for nodes in [2usize, 3, 4] {
            let cluster = Cluster::new(quick_cfg(nodes)).unwrap();
            let mut scratch = cluster.make_scratch();
            for path in [PathKind::Table, PathKind::Dhe, PathKind::Hybrid] {
                let got = cluster.execute_with(path, &queries, &mut scratch).unwrap();
                let want = single.execute(path, &queries).unwrap();
                assert_eq!(got.samples, want.samples);
                assert!(
                    (got.checksum - want.checksum).abs()
                        <= 1e-5 * (1.0 + want.checksum.abs()),
                    "{nodes} nodes, path {path}: {} vs {}",
                    got.checksum,
                    want.checksum
                );
            }
        }
    }

    #[test]
    fn outcome_counts_are_worker_count_invariant_even_under_churn() {
        let base = with_churn(quick_cfg(3));
        let a = serve_cluster(ClusterConfig {
            workers_per_node: 1,
            ..base.clone()
        })
        .unwrap();
        let b = serve_cluster(ClusterConfig {
            workers_per_node: 3,
            ..base
        })
        .unwrap();
        assert_eq!(a.outcome.completed, b.outcome.completed);
        assert_eq!(a.outcome.samples, b.outcome.samples);
        assert_eq!(a.virtual_sla_violations, b.virtual_sla_violations);
        assert_eq!(a.outcome.usage, b.outcome.usage);
        assert_eq!(a.path_decisions, b.path_decisions);
        assert_eq!(a.outcome.correct_samples, b.outcome.correct_samples);
        assert_eq!(a.retried_batches, b.retried_batches);
    }

    #[test]
    fn completion_counts_are_node_count_invariant() {
        // Routing profiles legitimately change with the node count (the
        // critical path shrinks), but no query may ever be lost or
        // double-counted, and with the dynamic tier disabled the merged
        // cache counters are a pure per-key function — identical across
        // topologies even though pruned scatter changes who executes
        // the replicated table features.
        let mk = |nodes| {
            serve_cluster(ClusterConfig {
                nodes,
                model: RuntimeModelConfig {
                    dynamic_cache_entries: 0,
                    ..quick_cfg(1).model
                },
                ..quick_cfg(nodes)
            })
            .unwrap()
        };
        let reports: Vec<ClusterReport> = [1usize, 2, 4].iter().map(|&n| mk(n)).collect();
        for r in &reports {
            assert_eq!(r.outcome.completed, 300, "{} nodes", r.nodes);
            assert_eq!(r.routed_queries, 300);
        }
        assert_eq!(reports[0].outcome.samples, reports[1].outcome.samples);
        assert_eq!(reports[0].outcome.samples, reports[2].outcome.samples);
        assert_eq!(
            reports[0].cache, reports[1].cache,
            "merged cache counters are topology-invariant (static tier)"
        );
        assert_eq!(reports[0].cache, reports[2].cache);
    }

    #[test]
    fn more_nodes_shrink_the_virtual_critical_path() {
        // The slowest-shard per-sample cost must fall as the feature
        // space spreads: compare the DHE profile at a large batch.
        let lat = |nodes| {
            let c = Cluster::new(ClusterConfig {
                nodes,
                model: RuntimeModelConfig {
                    sparse_features: 8,
                    ..quick_cfg(1).model
                },
                ..quick_cfg(nodes)
            })
            .unwrap();
            let idx = c.paths().iter().position(|&p| p == PathKind::Dhe).unwrap();
            c.mapping_set().mappings[idx].profile.latency_us(4096)
        };
        let one = lat(1);
        let eight = lat(8);
        assert!(eight < one, "8-node critical path {eight} !< 1-node {one}");
    }

    #[test]
    fn undersized_node_capacity_back_pressures_toward_the_table_path() {
        // Cripple one node's FLOPs budget: every DHE/hybrid profile that
        // scatters to it inflates, and its queue drains slower, so
        // Algorithm 2 sheds load to the (pruned, replicated) table
        // path. The capacity split is now *enforced* by routing, not
        // just reported.
        let base = ClusterConfig {
            sla_us: 2_000.0,
            ..quick_cfg(3)
        };
        // Cripple whichever node owns a hybrid-half DHE feature, so the
        // accuracy-preferred paths actually route through it.
        let probe = Cluster::new(base.clone()).unwrap();
        let victim = probe.plan().node_of(base.model.sparse_features - 1);
        let mut capacities = vec![base.virtual_gflops; 3];
        capacities[victim as usize] = 0.002;
        let table_fraction = |capacities: Vec<f64>| {
            let report = serve_cluster(ClusterConfig {
                node_capacity_gflops: capacities,
                ..base.clone()
            })
            .unwrap();
            report
                .outcome
                .usage
                .queries
                .iter()
                .filter(|(k, _)| k.starts_with("table@"))
                .map(|(_, &v)| v as f64)
                .sum::<f64>()
                / report.outcome.completed as f64
        };
        let uniform = table_fraction(vec![]);
        let skewed = table_fraction(capacities);
        assert!(
            skewed > uniform,
            "crippled node {victim} must push load to table: {skewed} !> {uniform}"
        );
    }

    #[test]
    fn failover_dips_the_hit_rate_and_the_rebalanced_shards_rewarm() {
        // Dynamic-tier-only cache: rebalanced shards start cold on
        // their new owners, so churn costs hit rate vs an identical
        // steady run — but the post-rebalance epochs re-warm (the run
        // stays well above a cold cache).
        let base = ClusterConfig {
            workers_per_node: 1,
            model: RuntimeModelConfig {
                encoder_cache_bytes: 0,
                decoder_centroids: 0,
                dynamic_cache_entries: 4096,
                ..quick_cfg(3).model
            },
            ..quick_cfg(3)
        };
        let steady = serve_cluster(base.clone()).unwrap();
        let churned = serve_cluster(with_churn(base)).unwrap();
        assert_eq!(churned.outcome.completed, 300);
        let s = steady.cache.encoder_hit_rate();
        let c = churned.cache.encoder_hit_rate();
        assert!(c < s, "rebalancing must cost hit rate: {c:.3} !< {s:.3}");
        assert!(
            c > 0.5 * s,
            "rebalanced shards must re-warm, not stay cold: {c:.3} vs {s:.3}"
        );
        assert_eq!(churned.epochs.len(), 3);
        // The failed node stops serving at its epoch boundary...
        let failed_slot = churned
            .node_ids
            .iter()
            .position(|&id| id == 2)
            .unwrap();
        assert_eq!(
            churned.epochs[1].per_node_cache[failed_slot].lookups()
                + churned.epochs[2].per_node_cache[failed_slot].lookups(),
            0,
            "failed node sees no post-failure lookups"
        );
        // ...and the joiner starts cold but serves (and hits) by the end.
        let join_slot = churned.node_ids.iter().position(|&id| id == 3).unwrap();
        assert_eq!(
            churned.epochs[0].per_node_cache[join_slot].lookups()
                + churned.epochs[1].per_node_cache[join_slot].lookups(),
            0,
            "joiner is idle before its epoch"
        );
        let joiner_final = &churned.epochs[2].per_node_cache[join_slot];
        assert!(joiner_final.lookups() > 0, "joiner serves after joining");
        assert!(
            joiner_final.encoder_hit_rate() > 0.0,
            "joiner's cold cache warms up"
        );
    }

    #[test]
    fn streaming_join_opens_a_dual_ownership_window() {
        // A streaming join must expand into window-open + one epoch per
        // chunk flip + the penalty lift, converging on exactly the plan
        // a barrier swap would have produced in one step.
        let barrier = Cluster::new(with_churn(quick_cfg(3))).unwrap();
        assert_eq!(barrier.epochs().len(), 3, "barrier baseline: boot/fail/join");
        let streaming = Cluster::new(ClusterConfig {
            rebalance: RebalanceConfig {
                streaming_chunks: 2,
                drain_us: 300.0,
                ..RebalanceConfig::default()
            },
            ..with_churn(quick_cfg(3))
        })
        .unwrap();
        let joiner = 3u32;
        let moves = barrier.epochs()[2].plan.features_of(joiner).len();
        assert!(moves >= 1, "test premise: the joiner takes features");
        let chunks = moves.min(2);
        // boot + fail + window + one per chunk + lift.
        let e = streaming.epochs();
        assert_eq!(e.len(), 4 + chunks);
        // The window epoch: joiner is live (it can receive warm state)
        // but owns nothing yet — reads keep going to the old owners.
        let window = &e[2];
        assert!(window.live.contains(&joiner), "joiner live in the window");
        assert!(
            window.plan.features_of(joiner).is_empty(),
            "dual-ownership window: reads stay on the old owners"
        );
        // Each flip epoch grows the joiner's shard monotonically...
        let mut owned = 0;
        for ep in &e[3..3 + chunks] {
            let now = ep.plan.features_of(joiner).len();
            assert!(now > owned, "each chunk flip moves features");
            owned = now;
        }
        // ...and the final plan is exactly the barrier plan.
        assert_eq!(e[e.len() - 1].plan, barrier.epochs()[2].plan);
        assert_eq!(e[2 + chunks].plan, barrier.epochs()[2].plan);
        // The replay contract holds with the expanded schedule, and
        // only the failure carries a retry-triggering node.
        let spec = streaming.replay_spec();
        assert_eq!(spec.events.len() + 1, spec.epochs.len());
        let failed: Vec<_> = spec.events.iter().filter_map(|ev| ev.failed).collect();
        assert_eq!(failed, vec![2], "only the failure retries in-flight work");
    }

    #[test]
    fn penalty_drain_lifts_the_disk_hit_surcharge() {
        // Satellite regression: the joiner's disk-hit surcharge used to
        // stick to its routing profiles for the rest of the run. With a
        // drain window configured, the lift epoch must route on
        // unpenalized profiles again — same plan, cheaper paths.
        let cluster = Cluster::new(ClusterConfig {
            rebalance: RebalanceConfig {
                streaming_chunks: 2,
                drain_us: 300.0,
                ..RebalanceConfig::default()
            },
            ..with_churn(quick_cfg(3))
        })
        .unwrap();
        let e = cluster.epochs();
        let (penalized, lifted) = (&e[e.len() - 2], &e[e.len() - 1]);
        assert_eq!(penalized.plan, lifted.plan, "the lift changes no shards");
        let mut strictly_cheaper = 0;
        for (p, l) in penalized
            .mappings
            .mappings
            .iter()
            .zip(lifted.mappings.mappings.iter())
        {
            let (pc, lc) = (p.profile.latency_us(1024), l.profile.latency_us(1024));
            assert!(lc <= pc, "lift never makes a path slower: {lc} > {pc}");
            if lc < pc {
                strictly_cheaper += 1;
            }
        }
        assert!(
            strictly_cheaper >= 1,
            "at least one path scattered to the joiner and sheds the surcharge"
        );
    }

    #[test]
    fn warm_start_ships_disk_tier_records_too() {
        // Satellite regression: `warm_start_joiner` used to export only
        // the old owners' *dynamic* tiers, silently dropping records
        // that lived in their disk segments (e.g. parked there by an
        // earlier hand-off and never promoted). A disk-resident feature
        // must survive a fail -> join cycle.
        let cluster = Cluster::new(with_churn(quick_cfg(3))).unwrap();
        let joiner = 3u32;
        let feats = cluster.epochs()[2].plan.features_of(joiner);
        assert!(!feats.is_empty(), "test premise: the joiner takes features");
        let f = feats[0];
        let owner = cluster.epochs()[1].plan.node_of(f);
        assert_ne!(owner, joiner);
        // Park records for the migrating feature in the old owner's
        // disk tier only — its dynamic tier never sees them.
        let mut seg = mprec_core::Segment::new();
        for id in 0..12u64 {
            seg.append(f, id, &[id as f32, 1.0, 2.0, 3.0]);
        }
        let owner_cache = cluster.nodes[cluster.slot_of(owner)].model.cache();
        assert_eq!(owner_cache.load_disk_segment(&seg.to_bytes()).unwrap(), 12);
        let shipped = cluster.warm_start_joiner(joiner, 2);
        assert!(
            shipped >= 12,
            "disk-tier records must ship on warm start, got {shipped}"
        );
        let joiner_cache = cluster.nodes[cluster.slot_of(joiner)].model.cache();
        assert!(joiner_cache.disk_len() >= 12, "records landed on the joiner");
    }

    #[test]
    fn adaptive_planner_rebalances_a_hot_table_executor() {
        // Pin every batch to the table path: pruned scatter folds it
        // onto one designated executor, so that node's virtual queue
        // grows while the others idle — exactly the hot-key imbalance
        // the planner watches. It must fire at least one partial
        // migration, every query must still complete exactly once, and
        // the overlay epochs must keep the replay contract intact.
        // Cripple the designated executor's capacity so its virtual
        // queue actually backs up between flushes.
        let mut base = ClusterConfig {
            route: RoutePolicy::Fixed(PathKind::Table),
            ..quick_cfg(3)
        };
        base.trace.qps = 20_000.0;
        let probe = Cluster::new(base.clone()).unwrap();
        let table_idx = probe
            .paths()
            .iter()
            .position(|&p| p == PathKind::Table)
            .unwrap();
        let executor = probe.epochs()[0].assignments[table_idx][0].0;
        let mut capacities = vec![base.virtual_gflops; 3];
        capacities[executor as usize] = base.virtual_gflops / 200.0;
        let cluster = Cluster::new(ClusterConfig {
            node_capacity_gflops: capacities,
            rebalance: RebalanceConfig {
                adaptive: true,
                adaptive_threshold_us: 50.0,
                adaptive_cooldown_us: 5_000.0,
                adaptive_max_moves: 1,
                ..RebalanceConfig::default()
            },
            ..base
        })
        .unwrap();
        assert_eq!(cluster.epochs().len(), 1, "no configured churn");
        let report = cluster.serve().unwrap();
        assert_eq!(report.outcome.completed, 300, "no query lost to a re-plan");
        assert_eq!(report.routed_queries, 300);
        assert!(
            report.adaptive_replans >= 1,
            "the imbalance must trigger the planner"
        );
        assert_eq!(report.migration_steps, report.adaptive_replans);
        let spec = cluster.replay_spec();
        assert_eq!(spec.events.len() + 1, spec.epochs.len());
        assert!(
            spec.epochs.len() > cluster.epochs().len(),
            "overlay epochs are appended to the replay spec"
        );
        assert!(
            spec.events.iter().all(|ev| ev.failed.is_none()),
            "re-plans never retry in-flight batches"
        );
        assert_eq!(report.epochs.len(), spec.epochs.len());
    }

    #[test]
    fn hot_key_drift_degrades_the_cache_hit_rate() {
        // The MP-Cache static tier is profiled on the epoch-0 hot set;
        // drifting the hot keys must cut the hit rate (the scenario's
        // entire point).
        let steady = serve_cluster(quick_cfg(2)).unwrap();
        let drift = serve_cluster(ClusterConfig {
            scenario: LoadScenario::HotKeyDrift { epochs: 8 },
            ..quick_cfg(2)
        })
        .unwrap();
        let s = steady.cache.encoder_hit_rate();
        let d = drift.cache.encoder_hit_rate();
        assert!(d < s, "drifted hit rate {d:.3} !< steady hit rate {s:.3}");
    }
}
