//! Scale-out cluster serving: a feature-sharded multi-node runtime.
//!
//! A single [`Engine`](crate::Engine) tops out at one machine's worker
//! pool and one MP-Cache. This module serves the same traces across `N`
//! simulated nodes:
//!
//! * a **consistent-hash feature-shard router**
//!   ([`FeatureShardPlan`], over [`mprec_core::ring::HashRing`])
//!   partitions the sparse-feature space — each node owns the embedding
//!   tables, DHE stacks, and `ShardedMpCache` state of its features
//!   only, so embedding capacity and cache churn scale out with the
//!   node count and rebalance minimally when nodes join or leave;
//! * a **front-end** micro-batches and routes queries exactly like the
//!   single-node engine (Algorithm 2 in deterministic virtual time),
//!   then **scatters** each batch to every node, which computes the
//!   partial sum-pooled embedding of its feature shard on its own
//!   worker pool with its own scratch;
//! * a **merger** **gathers** the partial pools, sums them, runs the
//!   top MLP, and records measured latencies into a mergeable
//!   histogram.
//!
//! Virtual-time latency accounting follows the slowest shard: the
//! router's per-path profiles charge `max` over nodes of the per-node
//! embedding FLOPs (plus the shared top-MLP merge cost and a
//! scatter/gather network overhead), so SLA routing reacts to the
//! critical path of the cluster, not its average.
//!
//! Every node builds its `RuntimeModel` from the same seed, so feature
//! `f`'s weights are identical wherever `f` is assigned — the cluster's
//! math (and, with an unsaturated dynamic tier, its aggregate cache hit
//! counts) matches the single-node runtime on the same trace. The nodes
//! are *simulated* (threads in one process, full weight replicas built
//! per node, execution restricted to the owned shard); the per-node
//! capacity split is reported analytically by `cluster_throughput`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mprec_core::mpcache::CacheStats;
use mprec_core::planner::MappingSet;
use mprec_core::ring::{HashRing, DEFAULT_VNODES};
use mprec_core::scheduler::{Scheduler, SchedulerConfig};
use mprec_data::query::{Query, QueryTraceConfig};
use mprec_data::scenario::{self, LoadScenario};
use mprec_nn::MlpScratch;
use mprec_serving::{PathUsage, ServingOutcome};
use mprec_tensor::Matrix;
use parking_lot::Mutex;

use crate::engine::{build_path_mappings, PathAccuracy, RoutePolicy};
use crate::histogram::{LatencyHistogram, DEFAULT_SUBS_PER_OCTAVE};
use crate::model::{BatchResult, PathKind, RuntimeModel, RuntimeModelConfig, ScratchSpace};
use crate::queue::BoundedQueue;
use crate::{Result, RuntimeError};

/// Full cluster configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of nodes (each with its own worker pool, model replica,
    /// and cache state).
    pub nodes: usize,
    /// Worker threads per node.
    pub workers_per_node: usize,
    /// Virtual points per node on the consistent-hash ring.
    pub vnodes: usize,
    /// MP-Cache shard count *inside* each node.
    pub cache_shards: usize,
    /// Query trace shape (sizes, arrivals, QPS).
    pub trace: QueryTraceConfig,
    /// Load scenario reshaping arrivals / the hot-key set.
    pub scenario: LoadScenario,
    /// Seed for the trace, the model weights, and per-query ID draws.
    pub seed: u64,
    /// SLA latency target in microseconds.
    pub sla_us: f64,
    /// Micro-batch sample budget.
    pub max_batch_samples: usize,
    /// Micro-batch deadline (µs after the oldest pending arrival).
    pub max_batch_wait_us: f64,
    /// Per-node work-queue depth (0 = `4 * workers_per_node`).
    pub queue_depth: usize,
    /// Pace ingress to the trace's arrival times (open-loop) instead of
    /// feeding as fast as the cluster drains (throughput mode).
    pub pace_ingress: bool,
    /// Path-selection policy.
    pub route: RoutePolicy,
    /// Virtual compute rate per node (GFLOP/s) for the critical-path
    /// latency profiles.
    pub virtual_gflops: f64,
    /// Fixed virtual per-batch dispatch overhead (µs).
    pub dispatch_overhead_us: f64,
    /// Virtual network overhead per scatter/gather round trip (µs),
    /// charged once per batch on multi-node clusters.
    pub net_overhead_us: f64,
    /// Per-path accuracy book.
    pub accuracy: PathAccuracy,
    /// Per-node latency histogram resolution (sub-buckets per octave);
    /// the merged report adopts it.
    pub histogram_subs: u32,
    /// Model shape (replicated weights, sharded execution).
    pub model: RuntimeModelConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            workers_per_node: 1,
            vnodes: DEFAULT_VNODES,
            cache_shards: 16,
            trace: QueryTraceConfig {
                num_queries: 10_000,
                mean_size: 32.0,
                sigma: 1.0,
                max_size: 512,
                qps: 1000.0,
                poisson_arrivals: true,
            },
            scenario: LoadScenario::SteadyPoisson,
            seed: 42,
            sla_us: 10_000.0,
            max_batch_samples: 256,
            max_batch_wait_us: 2_000.0,
            queue_depth: 0,
            pace_ingress: false,
            route: RoutePolicy::MpRec,
            virtual_gflops: 2.0,
            dispatch_overhead_us: 30.0,
            net_overhead_us: 150.0,
            accuracy: PathAccuracy::default(),
            histogram_subs: DEFAULT_SUBS_PER_OCTAVE,
            model: RuntimeModelConfig::default(),
        }
    }
}

/// The consistent-hash assignment of sparse features to nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureShardPlan {
    node_of: Vec<usize>,
    per_node: Vec<Vec<usize>>,
}

impl FeatureShardPlan {
    /// Assigns `features` sparse features across the ring's live nodes.
    /// Ring node ids must be the dense set `0..nodes` (the cluster's
    /// convention).
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty.
    pub fn new(ring: &HashRing, features: usize) -> Self {
        let mut per_node: Vec<Vec<usize>> = vec![Vec::new(); ring.len()];
        let node_of: Vec<usize> = ring
            .assign_range(features)
            .into_iter()
            .enumerate()
            .map(|(f, owner)| {
                let owner = owner.expect("ring has nodes") as usize;
                per_node[owner].push(f);
                owner
            })
            .collect();
        FeatureShardPlan { node_of, per_node }
    }

    /// Builds the canonical plan for `nodes` nodes with `vnodes` virtual
    /// points each.
    pub fn for_cluster(nodes: usize, vnodes: usize, features: usize) -> Self {
        let ring = HashRing::with_nodes(vnodes, 0..nodes as u32);
        Self::new(&ring, features)
    }

    /// Number of nodes in the plan.
    pub fn num_nodes(&self) -> usize {
        self.per_node.len()
    }

    /// The node owning `feature`.
    pub fn node_of(&self, feature: usize) -> usize {
        self.node_of[feature]
    }

    /// The features owned by `node`, ascending.
    pub fn features_of(&self, node: usize) -> &[usize] {
        &self.per_node[node]
    }

    /// Feature count per node (the shard-balance view).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.per_node.iter().map(Vec::len).collect()
    }
}

/// One simulated node: a full-weight model replica plus the feature
/// shard it executes.
#[derive(Debug)]
struct ClusterNode {
    model: Arc<RuntimeModel>,
    features: Vec<usize>,
}

/// Reusable buffers for the synchronous scatter/gather path
/// ([`Cluster::execute_with`]): one [`ScratchSpace`] and one partial
/// matrix per node, the gathered pool, and the top-MLP scratch. With a
/// warm `ClusterScratch`, an executed batch performs zero heap
/// allocations (extended guard in `tests/zero_alloc.rs`).
#[derive(Debug, Default)]
pub struct ClusterScratch {
    per_node: Vec<ScratchSpace>,
    partials: Vec<Matrix>,
    pooled: Matrix,
    top: MlpScratch,
}

/// Everything one cluster serve produced.
#[derive(Debug)]
pub struct ClusterReport {
    /// Aggregate results in the simulator's outcome shape.
    pub outcome: ServingOutcome,
    /// Merged MP-Cache stats across nodes.
    pub cache: CacheStats,
    /// Per-node MP-Cache stats (the per-shard hit-rate view).
    pub per_node_cache: Vec<CacheStats>,
    /// Features owned per node.
    pub per_node_features: Vec<usize>,
    /// Batches executed per node (summed over its workers).
    pub per_node_batches: Vec<u64>,
    /// Merged measured-latency histogram (at the configured
    /// resolution).
    pub histogram: LatencyHistogram,
    /// Queries whose virtual-time completion exceeded the SLA.
    pub virtual_sla_violations: u64,
    /// Queries whose measured latency exceeded the SLA.
    pub measured_sla_violations: u64,
    /// Queries routed by the front-end (must equal
    /// `outcome.completed`).
    pub routed_queries: u64,
    /// Path chosen per micro-batch, in dispatch order.
    pub path_decisions: Vec<PathKind>,
    /// Sum of all top-MLP scores.
    pub checksum: f64,
    /// Node count the run used.
    pub nodes: usize,
}

/// One query inside a dispatched batch (front-end bookkeeping).
#[derive(Debug, Clone, Copy)]
struct WorkQuery {
    size: u64,
    real_arrival: Instant,
}

/// A scattered micro-batch, shared by all nodes and the merger.
#[derive(Debug)]
struct BatchShared {
    path: PathKind,
    specs: Vec<(u64, u64)>,
    queries: Vec<WorkQuery>,
    total: usize,
    /// One partial-pool slot per node, filled by that node's worker.
    partials: Vec<Mutex<Option<Matrix>>>,
    /// Nodes still computing; the worker that drops this to zero hands
    /// the batch to the merger.
    pending: AtomicUsize,
}

#[derive(Debug)]
struct NodeWorkerReport {
    batches: u64,
    error: Option<String>,
}

#[derive(Debug)]
struct MergerReport {
    histogram: LatencyHistogram,
    completed: u64,
    samples: u64,
    measured_violations: u64,
    checksum: f64,
    last_done: Instant,
    error: Option<String>,
}

/// Front-end (deterministic) tallies.
#[derive(Debug, Default)]
struct DispatchTally {
    usage: PathUsage,
    correct_samples: f64,
    virtual_violations: u64,
    routed: u64,
    decisions: Vec<PathKind>,
}

/// The feature-sharded multi-node serving runtime: build once, serve a
/// trace.
#[derive(Debug)]
pub struct Cluster {
    cfg: ClusterConfig,
    nodes: Vec<ClusterNode>,
    plan: FeatureShardPlan,
    mappings: MappingSet,
    paths: Vec<PathKind>,
    labels: Vec<String>,
}

impl Cluster {
    /// Builds the shard plan, one model replica per node, and the
    /// slowest-shard virtual-time mapping set.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadConfig`] on degenerate configuration
    /// and propagates model-construction errors.
    pub fn new(cfg: ClusterConfig) -> Result<Self> {
        if cfg.nodes == 0 {
            return Err(RuntimeError::BadConfig("nodes must be >= 1".into()));
        }
        if cfg.workers_per_node == 0 {
            return Err(RuntimeError::BadConfig(
                "workers_per_node must be >= 1".into(),
            ));
        }
        if cfg.max_batch_samples == 0 {
            return Err(RuntimeError::BadConfig(
                "max_batch_samples must be >= 1".into(),
            ));
        }
        let plan =
            FeatureShardPlan::for_cluster(cfg.nodes, cfg.vnodes, cfg.model.sparse_features);
        let mut nodes = Vec::with_capacity(cfg.nodes);
        for n in 0..cfg.nodes {
            // Same seed on every node: feature f's table/stack weights
            // are identical wherever f lands, so sharded execution
            // reproduces single-node math.
            let model = RuntimeModel::build(&cfg.model, cfg.cache_shards, cfg.seed)?;
            nodes.push(ClusterNode {
                model: Arc::new(model),
                features: plan.features_of(n).to_vec(),
            });
        }
        let (mappings, paths) = build_cluster_mappings(&cfg, &nodes)?;
        let labels = mappings
            .mappings
            .iter()
            .map(|m| m.label(&mappings.platforms))
            .collect();
        Ok(Cluster {
            cfg,
            nodes,
            plan,
            mappings,
            paths,
            labels,
        })
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The feature-shard assignment.
    pub fn plan(&self) -> &FeatureShardPlan {
        &self.plan
    }

    /// The slowest-shard virtual-time mapping set the front-end routes
    /// on (shared with the replay simulator by differential tests).
    pub fn mapping_set(&self) -> &MappingSet {
        &self.mappings
    }

    /// Execution path per mapping index.
    pub fn paths(&self) -> &[PathKind] {
        &self.paths
    }

    /// Creates a [`ClusterScratch`] sized for this cluster.
    pub fn make_scratch(&self) -> ClusterScratch {
        ClusterScratch {
            per_node: self.nodes.iter().map(|n| n.model.make_scratch()).collect(),
            partials: self.nodes.iter().map(|_| Matrix::default()).collect(),
            pooled: Matrix::default(),
            top: MlpScratch::default(),
        }
    }

    /// Synchronous scatter/gather execution of one micro-batch: every
    /// node pools its feature shard into its partial matrix, the
    /// partials are summed, and the top MLP scores the gathered pool.
    /// Zero steady-state heap allocations with a warm scratch; the
    /// threaded [`Cluster::serve`] runs the same math with the scatter
    /// fanned out across node worker pools.
    ///
    /// # Errors
    ///
    /// Propagates node execution errors.
    pub fn execute_with(
        &self,
        path: PathKind,
        queries: &[(u64, u64)],
        scratch: &mut ClusterScratch,
    ) -> Result<BatchResult> {
        let mut total = 0u64;
        for (n, node) in self.nodes.iter().enumerate() {
            total = node.model.pool_features_into(
                path,
                queries,
                &node.features,
                &mut scratch.per_node[n],
                &mut scratch.partials[n],
            )?;
        }
        if total == 0 {
            return Ok(BatchResult {
                samples: 0,
                checksum: 0.0,
            });
        }
        scratch
            .pooled
            .resize_zeroed(total as usize, self.cfg.model.emb_dim);
        for partial in &scratch.partials {
            scratch.pooled.add_assign(partial)?;
        }
        let checksum = self.nodes[0]
            .model
            .score_pooled(&scratch.pooled, &mut scratch.top)?;
        Ok(BatchResult {
            samples: total,
            checksum,
        })
    }

    /// Serves the configured trace across the node pools.
    ///
    /// # Errors
    ///
    /// Surfaces any node- or merger-side execution error.
    pub fn serve(&self) -> Result<ClusterReport> {
        for node in &self.nodes {
            node.model.cache().reset_stats();
            node.model.cache().clear_dynamic();
        }
        let trace = scenario::generate(self.cfg.trace, self.cfg.scenario, self.cfg.seed);
        let depth = if self.cfg.queue_depth == 0 {
            self.cfg.workers_per_node * 4
        } else {
            self.cfg.queue_depth
        };
        let node_queues: Vec<Arc<BoundedQueue<Arc<BatchShared>>>> = (0..self.cfg.nodes)
            .map(|_| Arc::new(BoundedQueue::with_capacity(depth)))
            .collect();
        let merge_queue: Arc<BoundedQueue<Arc<BatchShared>>> =
            Arc::new(BoundedQueue::with_capacity((self.cfg.nodes * 4).max(8)));
        let start = Instant::now();

        let mut workers = Vec::with_capacity(self.cfg.nodes * self.cfg.workers_per_node);
        for (n, node) in self.nodes.iter().enumerate() {
            for _ in 0..self.cfg.workers_per_node {
                let queue = Arc::clone(&node_queues[n]);
                let merge = Arc::clone(&merge_queue);
                let model = Arc::clone(&node.model);
                let features = node.features.clone();
                workers.push(std::thread::spawn(move || {
                    node_worker_loop(&queue, &merge, &model, &features, n)
                }));
            }
        }
        let merger = {
            let merge = Arc::clone(&merge_queue);
            let model = Arc::clone(&self.nodes[0].model);
            let sla_us = self.cfg.sla_us;
            let subs = self.cfg.histogram_subs;
            let emb_dim = self.cfg.model.emb_dim;
            std::thread::spawn(move || merger_loop(&merge, &model, sla_us, subs, emb_dim, start))
        };

        let tally = self.dispatch(&trace, &node_queues, start);
        for q in &node_queues {
            q.close();
        }
        let mut node_batches = vec![0u64; self.cfg.nodes];
        let mut worker_error: Option<String> = None;
        for (i, w) in workers.into_iter().enumerate() {
            let report = w.join().expect("node worker thread panicked");
            node_batches[i / self.cfg.workers_per_node] += report.batches;
            if worker_error.is_none() {
                worker_error = report.error;
            }
        }
        merge_queue.close();
        let merged = merger.join().expect("merger thread panicked");
        if let Some(msg) = worker_error {
            return Err(RuntimeError::Worker(msg));
        }
        if let Some(msg) = merged.error {
            return Err(RuntimeError::Worker(msg));
        }
        Ok(self.assemble(tally, merged, node_batches, start))
    }

    /// Front-end loop: virtual-time batching + routing + scatter.
    fn dispatch(
        &self,
        trace: &[Query],
        node_queues: &[Arc<BoundedQueue<Arc<BatchShared>>>],
        start: Instant,
    ) -> DispatchTally {
        let mut sched = Scheduler::new(self.mappings.clone(), SchedulerConfig::default());
        let mut tally = DispatchTally::default();
        let mut pending: Vec<&Query> = Vec::new();
        let mut pending_samples: u64 = 0;

        let mut flush = |pending: &mut Vec<&Query>, pending_samples: &mut u64, flush_at_us: f64| {
            if pending.is_empty() {
                return;
            }
            let oldest_us = pending[0].arrival_us as f64;
            sched.advance_to(flush_at_us);
            let sla_remaining = (self.cfg.sla_us - (flush_at_us - oldest_us)).max(1.0);
            let decision = sched
                .route(*pending_samples, sla_remaining, 0)
                .expect("mapping set is never empty");
            let done_us = sched.commit(&decision);
            let path = self.paths[decision.mapping_idx];
            tally.decisions.push(path);
            let accuracy = self.cfg.accuracy.of(path) as f64;
            let label = &self.labels[decision.mapping_idx];
            let now = Instant::now();
            let mut specs = Vec::with_capacity(pending.len());
            let mut queries = Vec::with_capacity(pending.len());
            let mut total = 0usize;
            for q in pending.iter() {
                let virtual_latency = done_us - q.arrival_us as f64;
                if virtual_latency > self.cfg.sla_us {
                    tally.virtual_violations += 1;
                }
                tally.correct_samples += q.size as f64 * accuracy;
                tally.usage.record(label, q.size as u64);
                tally.routed += 1;
                specs.push((q.id, q.size as u64));
                total += q.size;
                queries.push(WorkQuery {
                    size: q.size as u64,
                    real_arrival: if self.cfg.pace_ingress {
                        start + Duration::from_micros(q.arrival_us)
                    } else {
                        now
                    },
                });
            }
            let shared = Arc::new(BatchShared {
                path,
                specs,
                queries,
                total,
                partials: (0..self.cfg.nodes).map(|_| Mutex::new(None)).collect(),
                pending: AtomicUsize::new(self.cfg.nodes),
            });
            for q in node_queues {
                // push only fails when a panicking worker closed its
                // queue; the join in serve() surfaces that panic.
                let _ = q.push(Arc::clone(&shared));
            }
            pending.clear();
            *pending_samples = 0;
        };

        for q in trace {
            let arrival_us = q.arrival_us as f64;
            if !pending.is_empty() {
                let deadline = pending[0].arrival_us as f64 + self.cfg.max_batch_wait_us;
                if arrival_us > deadline {
                    if self.cfg.pace_ingress {
                        sleep_until(start, deadline);
                    }
                    flush(&mut pending, &mut pending_samples, deadline);
                }
            }
            if self.cfg.pace_ingress {
                sleep_until(start, arrival_us);
            }
            if !pending.is_empty()
                && pending_samples + q.size as u64 > self.cfg.max_batch_samples as u64
            {
                flush(&mut pending, &mut pending_samples, arrival_us);
            }
            pending.push(q);
            pending_samples += q.size as u64;
            if pending_samples >= self.cfg.max_batch_samples as u64 {
                flush(&mut pending, &mut pending_samples, arrival_us);
            }
        }
        if !pending.is_empty() {
            let deadline = pending[0].arrival_us as f64 + self.cfg.max_batch_wait_us;
            if self.cfg.pace_ingress {
                sleep_until(start, deadline);
            }
            flush(&mut pending, &mut pending_samples, deadline);
        }
        tally
    }

    fn assemble(
        &self,
        tally: DispatchTally,
        merged: MergerReport,
        per_node_batches: Vec<u64>,
        start: Instant,
    ) -> ClusterReport {
        let per_node_cache: Vec<CacheStats> =
            self.nodes.iter().map(|n| n.model.cache().stats()).collect();
        let cache = per_node_cache
            .iter()
            .fold(CacheStats::default(), |acc, s| acc.merged(s));
        let outcome = ServingOutcome {
            policy: format!(
                "cluster:{}@{}n/{}w",
                self.cfg.route, self.cfg.nodes, self.cfg.workers_per_node
            ),
            completed: merged.completed,
            samples: merged.samples,
            correct_samples: tally.correct_samples,
            span_s: merged.last_done.duration_since(start).as_secs_f64(),
            sla_violations: tally.virtual_violations,
            mean_latency_us: merged.histogram.mean_us(),
            p95_latency_us: merged.histogram.quantile_us(0.95),
            p99_latency_us: merged.histogram.quantile_us(0.99),
            usage: tally.usage,
        };
        ClusterReport {
            outcome,
            cache,
            per_node_cache,
            per_node_features: self.plan.shard_sizes(),
            per_node_batches,
            histogram: merged.histogram,
            virtual_sla_violations: tally.virtual_violations,
            measured_sla_violations: merged.measured_violations,
            routed_queries: tally.routed,
            path_decisions: tally.decisions,
            checksum: merged.checksum,
            nodes: self.cfg.nodes,
        }
    }
}

/// Convenience: build a cluster and serve once.
///
/// # Errors
///
/// Propagates [`Cluster::new`] and [`Cluster::serve`] errors.
pub fn serve_cluster(cfg: ClusterConfig) -> Result<ClusterReport> {
    Cluster::new(cfg)?.serve()
}

/// Closes a queue if the owning thread unwinds, so a panicking node
/// worker (or merger) can never leave the front-end (or a node worker)
/// blocked on a bounded `push` with no consumer.
struct CloseOnPanic<'a>(&'a BoundedQueue<Arc<BatchShared>>);

impl Drop for CloseOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.close();
        }
    }
}

fn node_worker_loop(
    queue: &BoundedQueue<Arc<BatchShared>>,
    merge: &BoundedQueue<Arc<BatchShared>>,
    model: &RuntimeModel,
    features: &[usize],
    node_idx: usize,
) -> NodeWorkerReport {
    let _close_guard = CloseOnPanic(queue);
    let _close_merge_guard = CloseOnPanic(merge);
    let mut report = NodeWorkerReport {
        batches: 0,
        error: None,
    };
    let mut scratch = model.make_scratch();
    while let Some(item) = queue.pop() {
        let mut partial = Matrix::default();
        match model.pool_features_into(
            item.path,
            &item.specs,
            features,
            &mut scratch,
            &mut partial,
        ) {
            Ok(_) => {
                *item.partials[node_idx].lock() = Some(partial);
                report.batches += 1;
                if item.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                    // Last shard done: hand the batch to the merger
                    // (push only fails if the merger died; its join
                    // surfaces that).
                    let _ = merge.push(item);
                }
            }
            Err(e) => {
                report.error = Some(format!(
                    "node {node_idx} batch on path {}: {e}",
                    item.path
                ));
                // Keep draining so the front-end's bounded pushes always
                // make progress; the error surfaces after join.
                while queue.pop().is_some() {}
                break;
            }
        }
    }
    report
}

fn merger_loop(
    queue: &BoundedQueue<Arc<BatchShared>>,
    model: &RuntimeModel,
    sla_us: f64,
    histogram_subs: u32,
    emb_dim: usize,
    start: Instant,
) -> MergerReport {
    let _close_guard = CloseOnPanic(queue);
    let mut report = MergerReport {
        histogram: LatencyHistogram::with_subs_per_octave(histogram_subs),
        completed: 0,
        samples: 0,
        measured_violations: 0,
        checksum: 0.0,
        last_done: start,
        error: None,
    };
    let mut pooled = Matrix::default();
    let mut top = MlpScratch::default();
    while let Some(batch) = queue.pop() {
        pooled.resize_zeroed(batch.total, emb_dim);
        let mut failed = None;
        for slot in &batch.partials {
            let guard = slot.lock();
            let partial = guard
                .as_ref()
                .expect("pending hit zero, all partials present");
            if let Err(e) = pooled.add_assign(partial) {
                failed = Some(format!("gather add: {e}"));
                break;
            }
        }
        let checksum = match failed {
            None => match model.score_pooled(&pooled, &mut top) {
                Ok(c) => c,
                Err(e) => {
                    report.error = Some(format!("merge top-mlp: {e}"));
                    while queue.pop().is_some() {}
                    break;
                }
            },
            Some(msg) => {
                report.error = Some(msg);
                while queue.pop().is_some() {}
                break;
            }
        };
        let now = Instant::now();
        for q in &batch.queries {
            let latency_us = now.saturating_duration_since(q.real_arrival).as_secs_f64() * 1e6;
            report.histogram.record(latency_us);
            if latency_us > sla_us {
                report.measured_violations += 1;
            }
            report.completed += 1;
            report.samples += q.size;
        }
        report.checksum += checksum;
        report.last_done = now;
    }
    report
}

fn sleep_until(start: Instant, virtual_us: f64) {
    let target = start + Duration::from_secs_f64(virtual_us / 1e6);
    let now = Instant::now();
    if target > now {
        std::thread::sleep(target - now);
    }
}

/// Builds the cluster's virtual-time mapping set: per path, the
/// per-sample cost is the **slowest shard's** embedding FLOPs plus the
/// front-end's top-MLP merge cost, and the per-batch overhead adds one
/// scatter/gather network round trip on multi-node clusters.
fn build_cluster_mappings(
    cfg: &ClusterConfig,
    nodes: &[ClusterNode],
) -> Result<(MappingSet, Vec<PathKind>)> {
    let rate = cfg.virtual_gflops.max(1e-6) * 1e3;
    let overhead = cfg.dispatch_overhead_us
        + if cfg.nodes > 1 {
            2.0 * cfg.net_overhead_us
        } else {
            0.0
        };
    build_path_mappings(&cfg.model, cfg.route, cfg.accuracy, overhead, |path| {
        let slowest_shard = nodes
            .iter()
            .map(|n| n.model.flops_per_sample_features(path, &n.features))
            .fold(0.0f64, f64::max);
        (slowest_shard + nodes[0].model.top_flops_per_sample()) / rate
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(nodes: usize) -> ClusterConfig {
        ClusterConfig {
            nodes,
            workers_per_node: 1,
            cache_shards: 4,
            trace: QueryTraceConfig {
                num_queries: 300,
                mean_size: 4.0,
                sigma: 1.0,
                max_size: 16,
                qps: 5000.0,
                poisson_arrivals: true,
            },
            model: RuntimeModelConfig {
                sparse_features: 4,
                rows_per_feature: 500,
                emb_dim: 4,
                dhe_k: 8,
                dhe_dnn: 8,
                dhe_h: 1,
                top_hidden: vec![8],
                encoder_cache_bytes: 1024,
                decoder_centroids: 8,
                dynamic_cache_entries: 256,
                profile_accesses: 2_000,
                ..RuntimeModelConfig::default()
            },
            max_batch_samples: 32,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(matches!(
            Cluster::new(ClusterConfig {
                nodes: 0,
                ..quick_cfg(1)
            }),
            Err(RuntimeError::BadConfig(_))
        ));
        assert!(matches!(
            Cluster::new(ClusterConfig {
                workers_per_node: 0,
                ..quick_cfg(2)
            }),
            Err(RuntimeError::BadConfig(_))
        ));
    }

    #[test]
    fn shard_plan_covers_every_feature_exactly_once() {
        let plan = FeatureShardPlan::for_cluster(4, 64, 26);
        let mut seen = [false; 26];
        for n in 0..plan.num_nodes() {
            for &f in plan.features_of(n) {
                assert!(!seen[f], "feature {f} owned twice");
                seen[f] = true;
                assert_eq!(plan.node_of(f), n);
            }
        }
        assert!(seen.iter().all(|&s| s), "every feature owned");
        assert_eq!(plan.shard_sizes().iter().sum::<usize>(), 26);
    }

    #[test]
    fn cluster_serves_every_query_exactly_once() {
        let report = serve_cluster(quick_cfg(3)).unwrap();
        assert_eq!(report.outcome.completed, 300);
        assert_eq!(report.routed_queries, 300);
        assert_eq!(report.histogram.count(), 300);
        assert_eq!(
            report.outcome.usage.queries.values().sum::<u64>(),
            300
        );
        assert!(report.outcome.samples > 0);
        assert!(report.checksum.is_finite());
        assert_eq!(report.per_node_cache.len(), 3);
        assert_eq!(report.per_node_features.iter().sum::<usize>(), 4);
        let batches = report.path_decisions.len() as u64;
        assert!(batches > 0);
        assert_eq!(
            report.per_node_batches,
            vec![batches; 3],
            "every node executes every batch's scatter"
        );
    }

    #[test]
    fn single_node_cluster_matches_the_engine_checksum() {
        // nodes=1 collapses scatter/gather to the single-node execute
        // path: same batching, same routing profile shape, same math.
        let cluster = Cluster::new(ClusterConfig {
            nodes: 1,
            net_overhead_us: 0.0,
            ..quick_cfg(1)
        })
        .unwrap();
        let c = cluster.serve().unwrap();
        let e = crate::engine::serve(crate::engine::RuntimeConfig {
            workers: 1,
            cache_shards: 4,
            trace: cluster.config().trace,
            model: cluster.config().model.clone(),
            max_batch_samples: 32,
            ..crate::engine::RuntimeConfig::default()
        })
        .unwrap();
        assert_eq!(c.outcome.completed, e.outcome.completed);
        assert_eq!(c.outcome.samples, e.outcome.samples);
        assert_eq!(c.path_decisions, e.path_decisions);
        assert_eq!(c.outcome.usage, e.outcome.usage);
        assert!(
            (c.checksum - e.checksum).abs() <= 1e-6 * (1.0 + e.checksum.abs()),
            "cluster {} vs engine {}",
            c.checksum,
            e.checksum
        );
        assert_eq!(c.cache, e.cache, "same cache state on one node");
    }

    #[test]
    fn scatter_gather_matches_engine_math_across_node_counts() {
        // The synchronous scatter/gather path: partial pools summed
        // across shards equal full execution, for every path and any
        // node count.
        let single = RuntimeModel::build(&quick_cfg(1).model, 4, 42).unwrap();
        let queries = [(0u64, 6u64), (1, 3), (2, 8)];
        for nodes in [2usize, 3, 4] {
            let cluster = Cluster::new(quick_cfg(nodes)).unwrap();
            let mut scratch = cluster.make_scratch();
            for path in [PathKind::Table, PathKind::Dhe, PathKind::Hybrid] {
                let got = cluster.execute_with(path, &queries, &mut scratch).unwrap();
                let want = single.execute(path, &queries).unwrap();
                assert_eq!(got.samples, want.samples);
                assert!(
                    (got.checksum - want.checksum).abs()
                        <= 1e-5 * (1.0 + want.checksum.abs()),
                    "{nodes} nodes, path {path}: {} vs {}",
                    got.checksum,
                    want.checksum
                );
            }
        }
    }

    #[test]
    fn outcome_counts_are_worker_count_invariant() {
        let base = quick_cfg(2);
        let a = serve_cluster(ClusterConfig {
            workers_per_node: 1,
            ..base.clone()
        })
        .unwrap();
        let b = serve_cluster(ClusterConfig {
            workers_per_node: 3,
            ..base
        })
        .unwrap();
        assert_eq!(a.outcome.completed, b.outcome.completed);
        assert_eq!(a.outcome.samples, b.outcome.samples);
        assert_eq!(a.virtual_sla_violations, b.virtual_sla_violations);
        assert_eq!(a.outcome.usage, b.outcome.usage);
        assert_eq!(a.path_decisions, b.path_decisions);
        assert_eq!(a.outcome.correct_samples, b.outcome.correct_samples);
    }

    #[test]
    fn completion_counts_are_node_count_invariant() {
        // Routing profiles legitimately change with the node count (the
        // critical path shrinks), but no query may ever be lost or
        // double-counted, and with the dynamic tier disabled the merged
        // cache counters are a pure per-key function — identical across
        // topologies.
        let mk = |nodes| {
            serve_cluster(ClusterConfig {
                nodes,
                model: RuntimeModelConfig {
                    dynamic_cache_entries: 0,
                    ..quick_cfg(1).model
                },
                ..quick_cfg(nodes)
            })
            .unwrap()
        };
        let reports: Vec<ClusterReport> = [1usize, 2, 4].iter().map(|&n| mk(n)).collect();
        for r in &reports {
            assert_eq!(r.outcome.completed, 300, "{} nodes", r.nodes);
            assert_eq!(r.routed_queries, 300);
        }
        assert_eq!(reports[0].outcome.samples, reports[1].outcome.samples);
        assert_eq!(reports[0].outcome.samples, reports[2].outcome.samples);
        assert_eq!(
            reports[0].cache, reports[1].cache,
            "merged cache counters are topology-invariant (static tier)"
        );
        assert_eq!(reports[0].cache, reports[2].cache);
    }

    #[test]
    fn more_nodes_shrink_the_virtual_critical_path() {
        // The slowest-shard per-sample cost must fall as the feature
        // space spreads: compare the hybrid profile at a large batch.
        let lat = |nodes| {
            let c = Cluster::new(ClusterConfig {
                nodes,
                model: RuntimeModelConfig {
                    sparse_features: 8,
                    ..quick_cfg(1).model
                },
                ..quick_cfg(nodes)
            })
            .unwrap();
            let idx = c.paths().iter().position(|&p| p == PathKind::Dhe).unwrap();
            c.mapping_set().mappings[idx].profile.latency_us(4096)
        };
        let one = lat(1);
        let eight = lat(8);
        assert!(
            eight < one,
            "8-node critical path {eight} !< 1-node {one}"
        );
    }

    #[test]
    fn hot_key_drift_degrades_the_cache_hit_rate() {
        // The MP-Cache static tier is profiled on the epoch-0 hot set;
        // drifting the hot keys must cut the hit rate (the scenario's
        // entire point).
        let steady = serve_cluster(quick_cfg(2)).unwrap();
        let drift = serve_cluster(ClusterConfig {
            scenario: LoadScenario::HotKeyDrift { epochs: 8 },
            ..quick_cfg(2)
        })
        .unwrap();
        let s = steady.cache.encoder_hit_rate();
        let d = drift.cache.encoder_hit_rate();
        assert!(
            d < s,
            "drifted hit rate {d:.3} !< steady hit rate {s:.3}"
        );
    }
}
