use mprec_tensor::{init, Matrix};
use rand::Rng;

use crate::{Activation, NnError, Optimizer, Result};

/// A fully-connected layer `y = act(x W + b)` with explicit backprop.
///
/// Weights are stored `in x out` so the forward pass is a single row-major
/// GEMM. The layer caches its input and activated output between `forward`
/// and `backward`; gradients accumulate until [`Linear::step`] applies the
/// optimizer and clears them.
#[derive(Debug, Clone)]
pub struct Linear {
    w: Matrix,
    b: Vec<f32>,
    act: Activation,
    grad_w: Matrix,
    grad_b: Vec<f32>,
    // Adagrad accumulators, grown lazily on the first stateful update.
    state_w: Vec<f32>,
    state_b: Vec<f32>,
    cached_input: Option<Matrix>,
    cached_output: Option<Matrix>,
}

impl Linear {
    /// Creates a layer with Xavier-initialized weights and zero bias.
    pub fn new(fan_in: usize, fan_out: usize, act: Activation, rng: &mut impl Rng) -> Self {
        Linear {
            w: init::xavier_uniform(fan_in, fan_out, rng),
            b: vec![0.0; fan_out],
            act,
            grad_w: Matrix::zeros(fan_in, fan_out),
            grad_b: vec![0.0; fan_out],
            state_w: Vec::new(),
            state_b: Vec::new(),
            cached_input: None,
            cached_output: None,
        }
    }

    /// Input width.
    pub fn fan_in(&self) -> usize {
        self.w.rows()
    }

    /// Output width.
    pub fn fan_out(&self) -> usize {
        self.w.cols()
    }

    /// The layer's activation.
    pub fn activation(&self) -> Activation {
        self.act
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Borrow of the weight matrix (e.g. for checkpointing or inspection).
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Borrow of the bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.b
    }

    /// Forward pass for a batch (`x` is `batch x fan_in`). Caches input and
    /// output for a subsequent [`Linear::backward`].
    ///
    /// # Errors
    ///
    /// Returns a tensor shape error if `x.cols() != fan_in`.
    pub fn forward(&mut self, x: &Matrix) -> Result<Matrix> {
        let mut y = Matrix::zeros(x.rows(), self.w.cols());
        self.infer_into(x, &mut y)?;
        self.cached_input = Some(x.clone());
        self.cached_output = Some(y.clone());
        Ok(y)
    }

    /// Inference-only forward pass: no caches are written, `self` stays
    /// immutable. Use this on hot serving paths.
    ///
    /// # Errors
    ///
    /// Returns a tensor shape error if `x.cols() != fan_in`.
    pub fn infer(&self, x: &Matrix) -> Result<Matrix> {
        let mut y = Matrix::zeros(x.rows(), self.w.cols());
        self.infer_into(x, &mut y)?;
        Ok(y)
    }

    /// Fused inference into a caller-provided buffer: one GEMM writes
    /// `out`, then a single pass applies bias and activation together.
    /// `out` is resized (reusing its allocation) and fully overwritten —
    /// the steady-state hot path touches the allocator zero times.
    ///
    /// # Errors
    ///
    /// Returns a tensor shape error if `x.cols() != fan_in`.
    pub fn infer_into(&self, x: &Matrix, out: &mut Matrix) -> Result<()> {
        x.matmul_into(&self.w, out)?;
        self.act.apply_with_bias(out, &self.b);
        Ok(())
    }

    /// Backward pass: consumes the cached activations, accumulates weight
    /// and bias gradients, and returns the gradient w.r.t. the input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCached`] if `forward` has not been called
    /// since the last `backward`.
    pub fn backward(&mut self, grad_out: &Matrix) -> Result<Matrix> {
        let x = self.cached_input.take().ok_or(NnError::NoForwardCached)?;
        let y = self.cached_output.take().ok_or(NnError::NoForwardCached)?;
        let mut g = grad_out.clone();
        self.act.backprop(&mut g, &y);
        // dW += X^T g ; db += column sums of g ; dX = g W^T
        let dw = x.matmul_tn(&g)?;
        self.grad_w.add_assign(&dw)?;
        for r in 0..g.rows() {
            for (db, &gv) in self.grad_b.iter_mut().zip(g.row(r).iter()) {
                *db += gv;
            }
        }
        let dx = g.matmul_nt(&self.w)?;
        Ok(dx)
    }

    /// Applies `opt` to the accumulated gradients and clears them.
    pub fn step(&mut self, opt: &impl Optimizer) {
        if opt.needs_state() {
            if self.state_w.is_empty() {
                self.state_w = vec![0.0; self.w.len()];
                self.state_b = vec![0.0; self.b.len()];
            }
            opt.update(
                self.w.as_mut_slice(),
                self.grad_w.as_slice(),
                &mut self.state_w,
            );
            opt.update(&mut self.b, &self.grad_b, &mut self.state_b);
        } else {
            let mut empty_w: Vec<f32> = Vec::new();
            opt.update(self.w.as_mut_slice(), self.grad_w.as_slice(), &mut empty_w);
            opt.update(&mut self.b, &self.grad_b, &mut empty_w);
        }
        self.grad_w.fill_zero();
        self.grad_b.iter_mut().for_each(|x| *x = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(3, 5, Activation::Relu, &mut rng);
        let x = Matrix::zeros(4, 3);
        let y = l.forward(&x).unwrap();
        assert_eq!(y.shape(), (4, 5));
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(3, 5, Activation::Relu, &mut rng);
        let g = Matrix::zeros(4, 5);
        assert!(matches!(l.backward(&g), Err(NnError::NoForwardCached)));
    }

    #[test]
    fn identity_layer_gradient_check() {
        // Finite-difference check on a tiny identity-activation layer.
        let mut rng = StdRng::seed_from_u64(3);
        let mut l = Linear::new(2, 2, Activation::Identity, &mut rng);
        let x = Matrix::from_vec(1, 2, vec![0.3, -0.7]).unwrap();
        // Loss = sum(y); dL/dy = ones.
        let ones = Matrix::filled(1, 2, 1.0);
        let _ = l.forward(&x).unwrap();
        let _ = l.backward(&ones).unwrap();
        let analytic = l.grad_w.clone();

        let eps = 1e-3f32;
        for i in 0..2 {
            for j in 0..2 {
                let mut lp = l.clone();
                lp.w[(i, j)] += eps;
                let yp: f32 = lp.infer(&x).unwrap().as_slice().iter().sum();
                let mut lm = l.clone();
                lm.w[(i, j)] -= eps;
                let ym: f32 = lm.infer(&x).unwrap().as_slice().iter().sum();
                let numeric = (yp - ym) / (2.0 * eps);
                assert!(
                    (numeric - analytic[(i, j)]).abs() < 1e-2,
                    "grad mismatch at ({i},{j}): numeric {numeric} vs analytic {}",
                    analytic[(i, j)]
                );
            }
        }
    }

    #[test]
    fn step_clears_gradients() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(2, 2, Activation::Identity, &mut rng);
        let x = Matrix::filled(1, 2, 1.0);
        let g = Matrix::filled(1, 2, 1.0);
        l.forward(&x).unwrap();
        l.backward(&g).unwrap();
        assert!(l.grad_w.frob_norm() > 0.0);
        l.step(&Sgd { lr: 0.1 });
        assert_eq!(l.grad_w.frob_norm(), 0.0);
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut l = Linear::new(4, 3, Activation::Relu, &mut rng);
        let x = Matrix::from_fn(2, 4, |r, c| (r + c) as f32 * 0.1 - 0.2);
        let a = l.forward(&x).unwrap();
        let b = l.infer(&x).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn infer_into_matches_infer_and_reuses_buffer() {
        let mut rng = StdRng::seed_from_u64(11);
        let l = Linear::new(6, 5, Activation::Sigmoid, &mut rng);
        let x = Matrix::from_fn(3, 6, |r, c| ((r * 6 + c) as f32).cos());
        let owned = l.infer(&x).unwrap();
        let mut out = Matrix::zeros(8, 8);
        l.infer_into(&x, &mut out).unwrap();
        assert_eq!(out, owned);
        let ptr = out.as_slice().as_ptr();
        l.infer_into(&x, &mut out).unwrap();
        assert_eq!(out.as_slice().as_ptr(), ptr, "steady state reuses the buffer");
    }
}
