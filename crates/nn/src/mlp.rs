use mprec_tensor::Matrix;
use rand::Rng;

use crate::{Activation, Linear, NnError, Optimizer, Result};

/// Two reusable activation buffers an [`Mlp`] ping-pongs between during
/// [`Mlp::infer_scratch`], instead of allocating one matrix per layer.
///
/// Create once per worker (or per call site) and reuse across batches:
/// after the first call at the largest batch size the buffers never touch
/// the allocator again.
#[derive(Debug, Clone, Default)]
pub struct MlpScratch {
    ping: Matrix,
    pong: Matrix,
}

impl MlpScratch {
    /// Creates an empty scratch pair (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// A stack of [`Linear`] layers.
///
/// `sizes = [in, h1, ..., out]` creates `sizes.len() - 1` layers; all hidden
/// layers use `hidden_act`, the final layer uses `output_act`. This mirrors
/// both the DLRM bottom/top MLPs and the DHE decoder stacks, which differ
/// only in their size vectors.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Builds the stack with Xavier-initialized weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadArchitecture`] if fewer than two sizes are given
    /// or any size is zero.
    pub fn new(
        sizes: &[usize],
        hidden_act: Activation,
        output_act: Activation,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        if sizes.len() < 2 {
            return Err(NnError::BadArchitecture(format!(
                "need at least [in, out], got {sizes:?}"
            )));
        }
        if sizes.contains(&0) {
            return Err(NnError::BadArchitecture(format!(
                "layer sizes must be positive, got {sizes:?}"
            )));
        }
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for w in sizes.windows(2) {
            let is_last = layers.len() == sizes.len() - 2;
            let act = if is_last { output_act } else { hidden_act };
            layers.push(Linear::new(w[0], w[1], act, rng));
        }
        Ok(Mlp { layers })
    }

    /// Input width of the first layer.
    pub fn input_dim(&self) -> usize {
        self.layers[0].fan_in()
    }

    /// Output width of the last layer.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("mlp has >= 1 layer").fan_out()
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total trainable parameters across all layers.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Linear::param_count).sum()
    }

    /// Borrow of the individual layers.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Training forward pass (caches activations for backward).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying layers.
    pub fn forward(&mut self, x: &Matrix) -> Result<Matrix> {
        let mut h = x.clone();
        for layer in self.layers.iter_mut() {
            h = layer.forward(&h)?;
        }
        Ok(h)
    }

    /// Inference-only forward pass (no caches, immutable receiver).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying layers.
    pub fn infer(&self, x: &Matrix) -> Result<Matrix> {
        let mut h = x.clone();
        for layer in self.layers.iter() {
            h = layer.infer(&h)?;
        }
        Ok(h)
    }

    /// Inference forward pass that ping-pongs between the two scratch
    /// matrices instead of allocating per layer; returns a borrow of the
    /// scratch buffer holding the final layer's output.
    ///
    /// Each layer runs the fused [`Linear::infer_into`] (GEMM + bias +
    /// activation in one output pass), so a steady-state call performs
    /// zero heap allocations.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying layers.
    pub fn infer_scratch<'a>(&self, x: &Matrix, scratch: &'a mut MlpScratch) -> Result<&'a Matrix> {
        let (first, rest) = self.layers.split_first().expect("mlp has >= 1 layer");
        first.infer_into(x, &mut scratch.ping)?;
        let mut in_ping = true;
        for layer in rest {
            if in_ping {
                layer.infer_into(&scratch.ping, &mut scratch.pong)?;
            } else {
                layer.infer_into(&scratch.pong, &mut scratch.ping)?;
            }
            in_ping = !in_ping;
        }
        Ok(if in_ping { &scratch.ping } else { &scratch.pong })
    }

    /// Backward pass; returns the gradient w.r.t. the stack input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCached`] if `forward` was not called first.
    pub fn backward(&mut self, grad_out: &Matrix) -> Result<Matrix> {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// Applies the optimizer to every layer and clears gradients.
    pub fn step(&mut self, opt: &impl Optimizer) {
        for layer in self.layers.iter_mut() {
            layer.step(opt);
        }
    }

    /// Total FLOPs for one forward pass at the given batch size
    /// (2 per multiply-accumulate, plus activation costs).
    pub fn forward_flops(&self, batch: usize) -> u64 {
        let mut flops = 0u64;
        for layer in &self.layers {
            let (fi, fo) = (layer.fan_in() as u64, layer.fan_out() as u64);
            flops += 2 * fi * fo * batch as u64;
            flops += layer.activation().flops_per_element() * fo * batch as u64;
        }
        flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bce_with_logits_grad, Sgd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_degenerate_architectures() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(Mlp::new(&[4], Activation::Relu, Activation::Identity, &mut rng).is_err());
        assert!(Mlp::new(&[4, 0, 2], Activation::Relu, Activation::Identity, &mut rng).is_err());
    }

    #[test]
    fn dims_and_params() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(&[13, 64, 16], Activation::Relu, Activation::Relu, &mut rng).unwrap();
        assert_eq!(mlp.input_dim(), 13);
        assert_eq!(mlp.output_dim(), 16);
        assert_eq!(mlp.depth(), 2);
        assert_eq!(mlp.param_count(), 13 * 64 + 64 + 64 * 16 + 16);
    }

    #[test]
    fn forward_flops_counts_gemms() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(&[8, 4], Activation::Identity, Activation::Identity, &mut rng).unwrap();
        assert_eq!(mlp.forward_flops(2), 2 * 8 * 4 * 2);
    }

    #[test]
    fn xor_is_learnable() {
        // End-to-end sanity: a small MLP drives BCE loss down on XOR.
        let mut rng = StdRng::seed_from_u64(12);
        let mut mlp = Mlp::new(
            &[2, 16, 1],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        )
        .unwrap();
        let x =
            Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]).unwrap();
        let y = [0.0f32, 1.0, 1.0, 0.0];
        let opt = Sgd { lr: 0.3 };
        let mut first_loss = 0.0;
        let mut last_loss = 0.0;
        for epoch in 0..400 {
            let logits = mlp.forward(&x).unwrap();
            let (loss, grad) = bce_with_logits_grad(&logits, &y).unwrap();
            if epoch == 0 {
                first_loss = loss;
            }
            last_loss = loss;
            mlp.backward(&grad).unwrap();
            mlp.step(&opt);
        }
        assert!(
            last_loss < first_loss * 0.25,
            "loss did not drop: {first_loss} -> {last_loss}"
        );
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut mlp =
            Mlp::new(&[4, 8, 2], Activation::Relu, Activation::Sigmoid, &mut rng).unwrap();
        let x = Matrix::from_fn(3, 4, |r, c| ((r * 4 + c) as f32).sin());
        assert_eq!(mlp.forward(&x).unwrap(), mlp.infer(&x).unwrap());
    }

    #[test]
    fn infer_scratch_matches_infer_across_depths() {
        let mut rng = StdRng::seed_from_u64(6);
        for sizes in [&[5usize, 3][..], &[5, 7, 3], &[5, 9, 6, 2]] {
            let mlp = Mlp::new(sizes, Activation::Relu, Activation::Identity, &mut rng).unwrap();
            let x = Matrix::from_fn(4, sizes[0], |r, c| ((r + 2 * c) as f32 * 0.3).sin());
            let mut scratch = MlpScratch::new();
            let via_scratch = mlp.infer_scratch(&x, &mut scratch).unwrap().clone();
            assert_eq!(via_scratch, mlp.infer(&x).unwrap(), "depth {}", sizes.len() - 1);
        }
    }

    #[test]
    fn infer_scratch_reuses_buffers_across_batches() {
        let mut rng = StdRng::seed_from_u64(7);
        let mlp = Mlp::new(&[4, 16, 8, 1], Activation::Relu, Activation::Identity, &mut rng)
            .unwrap();
        let x = Matrix::from_fn(32, 4, |r, c| ((r * 4 + c) as f32).cos());
        let mut scratch = MlpScratch::new();
        let ptr = mlp.infer_scratch(&x, &mut scratch).unwrap().as_slice().as_ptr();
        for _ in 0..3 {
            let again = mlp.infer_scratch(&x, &mut scratch).unwrap();
            assert_eq!(again.as_slice().as_ptr(), ptr, "no reallocation batch-to-batch");
        }
    }
}
