//! Loss functions for click-through-rate training.

use mprec_tensor::{ops, Matrix};

use crate::{NnError, Result};

/// Numerically-stable binary cross-entropy on raw logits.
///
/// Returns the mean loss over the batch. `logits` must be a `batch x 1`
/// column; `labels` are 0/1 targets.
///
/// # Errors
///
/// Returns [`NnError::LabelMismatch`] if the batch sizes disagree.
pub fn bce_with_logits(logits: &Matrix, labels: &[f32]) -> Result<f32> {
    if logits.len() != labels.len() {
        return Err(NnError::LabelMismatch {
            logits: logits.len(),
            labels: labels.len(),
        });
    }
    let mut total = 0.0f64;
    for (&z, &y) in logits.as_slice().iter().zip(labels.iter()) {
        // max(z,0) - z*y + ln(1 + exp(-|z|)) is stable for both signs.
        let l = z.max(0.0) - z * y + (-z.abs()).exp().ln_1p();
        total += l as f64;
    }
    Ok((total / labels.len() as f64) as f32)
}

/// BCE loss plus the gradient of the mean loss w.r.t. the logits.
///
/// The gradient is `(sigmoid(z) - y) / batch`, shaped like `logits`.
///
/// # Errors
///
/// Returns [`NnError::LabelMismatch`] if the batch sizes disagree.
pub fn bce_with_logits_grad(logits: &Matrix, labels: &[f32]) -> Result<(f32, Matrix)> {
    let loss = bce_with_logits(logits, labels)?;
    let n = labels.len() as f32;
    let mut grad = logits.clone();
    for (g, &y) in grad.as_mut_slice().iter_mut().zip(labels.iter()) {
        *g = (ops::sigmoid(*g) - y) / n;
    }
    Ok((loss, grad))
}

/// Mean log-loss from predicted probabilities (clamped away from 0/1).
///
/// Used for evaluation-time reporting where predictions are probabilities,
/// not logits.
///
/// # Errors
///
/// Returns [`NnError::LabelMismatch`] if lengths disagree.
pub fn log_loss(probs: &[f32], labels: &[f32]) -> Result<f32> {
    if probs.len() != labels.len() {
        return Err(NnError::LabelMismatch {
            logits: probs.len(),
            labels: labels.len(),
        });
    }
    let eps = 1e-7f32;
    let mut total = 0.0f64;
    for (&p, &y) in probs.iter().zip(labels.iter()) {
        let p = p.clamp(eps, 1.0 - eps);
        total += -(y * p.ln() + (1.0 - y) * (1.0 - p).ln()) as f64;
    }
    Ok((total / labels.len() as f64) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_zero_logit_is_ln2() {
        let z = Matrix::zeros(4, 1);
        let y = [0.0, 1.0, 0.0, 1.0];
        let loss = bce_with_logits(&z, &y).unwrap();
        assert!((loss - std::f32::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn bce_confident_correct_is_small() {
        let z = Matrix::from_vec(2, 1, vec![10.0, -10.0]).unwrap();
        let y = [1.0, 0.0];
        assert!(bce_with_logits(&z, &y).unwrap() < 1e-3);
    }

    #[test]
    fn bce_is_stable_for_extreme_logits() {
        let z = Matrix::from_vec(2, 1, vec![1e4, -1e4]).unwrap();
        let y = [0.0, 1.0];
        let loss = bce_with_logits(&z, &y).unwrap();
        assert!(loss.is_finite());
    }

    #[test]
    fn grad_sign_points_toward_label() {
        let z = Matrix::zeros(2, 1);
        let y = [1.0, 0.0];
        let (_, g) = bce_with_logits_grad(&z, &y).unwrap();
        assert!(g[(0, 0)] < 0.0, "label 1 should push logit up");
        assert!(g[(1, 0)] > 0.0, "label 0 should push logit down");
    }

    #[test]
    fn grad_matches_finite_difference() {
        let z = Matrix::from_vec(3, 1, vec![0.5, -1.2, 2.0]).unwrap();
        let y = [1.0, 0.0, 1.0];
        let (_, g) = bce_with_logits_grad(&z, &y).unwrap();
        let eps = 1e-3;
        for i in 0..3 {
            let mut zp = z.clone();
            zp[(i, 0)] += eps;
            let mut zm = z.clone();
            zm[(i, 0)] -= eps;
            let numeric = (bce_with_logits(&zp, &y).unwrap() - bce_with_logits(&zm, &y).unwrap())
                / (2.0 * eps);
            assert!(
                (numeric - g[(i, 0)]).abs() < 1e-3,
                "grad {i}: numeric {numeric} vs analytic {}",
                g[(i, 0)]
            );
        }
    }

    #[test]
    fn mismatched_labels_error() {
        let z = Matrix::zeros(2, 1);
        assert!(matches!(
            bce_with_logits(&z, &[0.0]),
            Err(NnError::LabelMismatch { .. })
        ));
        assert!(log_loss(&[0.5], &[]).is_err());
    }

    #[test]
    fn log_loss_clamps_extremes() {
        let l = log_loss(&[0.0, 1.0], &[1.0, 0.0]).unwrap();
        assert!(l.is_finite());
    }
}
