//! Neural-network substrate for the MP-Rec reproduction.
//!
//! Provides the pieces DLRM and DHE decoders are assembled from: a
//! fully-connected [`Linear`] layer with explicit backward pass, the
//! [`Mlp`] stack, activations, binary-cross-entropy loss, and SGD/Adagrad
//! optimizers. Everything is deterministic given the caller's RNG.
//!
//! # Examples
//!
//! Train a 2-layer MLP one step on a toy batch:
//!
//! ```
//! use mprec_nn::{Activation, Mlp, Sgd, bce_with_logits_grad};
//! use mprec_tensor::Matrix;
//! use rand::{SeedableRng, rngs::StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut mlp = Mlp::new(&[2, 8, 1], Activation::Relu, Activation::Identity, &mut rng)?;
//! let x = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.])?;
//! let y = [0.0f32, 1.0, 1.0, 0.0];
//! let logits = mlp.forward(&x)?;
//! let (loss, dlogits) = bce_with_logits_grad(&logits, &y)?;
//! mlp.backward(&dlogits)?;
//! mlp.step(&Sgd { lr: 0.1 });
//! assert!(loss.is_finite());
//! # Ok::<(), mprec_nn::NnError>(())
//! ```

mod activation;
mod linear;
mod loss;
mod mlp;
mod optim;

pub use activation::Activation;
pub use linear::Linear;
pub use loss::{bce_with_logits, bce_with_logits_grad, log_loss};
pub use mlp::{Mlp, MlpScratch};
pub use optim::{Adagrad, Optimizer, Sgd};

use std::error::Error;
use std::fmt;

/// Error raised by network construction or forward/backward passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// Underlying tensor kernel failed (shape mismatch etc.).
    Tensor(mprec_tensor::TensorError),
    /// A layer stack was configured with fewer than two sizes.
    BadArchitecture(String),
    /// `backward` was called without a preceding `forward`.
    NoForwardCached,
    /// Label/logit count mismatch in a loss function.
    LabelMismatch {
        /// Number of logits provided.
        logits: usize,
        /// Number of labels provided.
        labels: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BadArchitecture(msg) => write!(f, "bad architecture: {msg}"),
            NnError::NoForwardCached => write!(f, "backward called before forward"),
            NnError::LabelMismatch { logits, labels } => {
                write!(f, "loss got {logits} logits but {labels} labels")
            }
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mprec_tensor::TensorError> for NnError {
    fn from(e: mprec_tensor::TensorError) -> Self {
        NnError::Tensor(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NnError>;
