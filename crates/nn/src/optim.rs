//! Optimizers.
//!
//! DLRM training traditionally pairs plain SGD on dense parameters with
//! (sparse) Adagrad on embedding tables; both are provided here behind a
//! common sealed [`Optimizer`] trait so layers and embedding
//! representations can be generic over the update rule.

/// Parameter update rule.
///
/// This trait is sealed: the cost model and layer state management assume
/// the two concrete optimizers shipped with the crate.
pub trait Optimizer: private::Sealed {
    /// Applies one update to `params` given `grads`.
    ///
    /// `state` is per-parameter optimizer memory (e.g. Adagrad accumulators);
    /// it is empty for stateless rules and otherwise has `params.len()`
    /// entries managed by the caller.
    ///
    /// # Panics
    ///
    /// Panics if `grads.len() != params.len()`, or if the rule is stateful
    /// and `state.len() != params.len()`.
    fn update(&self, params: &mut [f32], grads: &[f32], state: &mut Vec<f32>);

    /// Whether [`Optimizer::update`] requires per-parameter state.
    fn needs_state(&self) -> bool;
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Optimizer for Sgd {
    fn update(&self, params: &mut [f32], grads: &[f32], _state: &mut Vec<f32>) {
        assert_eq!(params.len(), grads.len(), "sgd: length mismatch");
        for (p, g) in params.iter_mut().zip(grads.iter()) {
            *p -= self.lr * g;
        }
    }

    fn needs_state(&self) -> bool {
        false
    }
}

/// Adagrad with per-parameter accumulators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adagrad {
    /// Learning rate.
    pub lr: f32,
    /// Denominator fuzz to avoid division by zero.
    pub eps: f32,
}

impl Default for Adagrad {
    fn default() -> Self {
        Adagrad {
            lr: 0.01,
            eps: 1e-8,
        }
    }
}

impl Optimizer for Adagrad {
    fn update(&self, params: &mut [f32], grads: &[f32], state: &mut Vec<f32>) {
        assert_eq!(params.len(), grads.len(), "adagrad: length mismatch");
        if state.is_empty() {
            state.resize(params.len(), 0.0);
        }
        assert_eq!(params.len(), state.len(), "adagrad: state length mismatch");
        for ((p, &g), s) in params.iter_mut().zip(grads.iter()).zip(state.iter_mut()) {
            *s += g * g;
            *p -= self.lr * g / (s.sqrt() + self.eps);
        }
    }

    fn needs_state(&self) -> bool {
        true
    }
}

mod private {
    pub trait Sealed {}
    impl Sealed for super::Sgd {}
    impl Sealed for super::Adagrad {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_moves_against_gradient() {
        let mut p = vec![1.0f32, -1.0];
        let g = vec![0.5f32, -0.5];
        Sgd { lr: 0.1 }.update(&mut p, &g, &mut Vec::new());
        assert_eq!(p, vec![0.95, -0.95]);
    }

    #[test]
    fn adagrad_shrinks_effective_lr_over_time() {
        let opt = Adagrad {
            lr: 0.1,
            eps: 1e-8,
        };
        let mut p = vec![0.0f32];
        let g = vec![1.0f32];
        let mut state = vec![0.0f32];
        opt.update(&mut p, &g, &mut state);
        let first_step = -p[0];
        let before = p[0];
        opt.update(&mut p, &g, &mut state);
        let second_step = before - p[0];
        assert!(second_step < first_step, "{second_step} !< {first_step}");
        assert!(second_step > 0.0);
    }

    #[test]
    fn adagrad_initializes_state_lazily() {
        let opt = Adagrad::default();
        let mut p = vec![0.0f32; 3];
        let mut state = Vec::new();
        opt.update(&mut p, &[1.0, 2.0, 3.0], &mut state);
        assert_eq!(state.len(), 3);
        assert_eq!(state, vec![1.0, 4.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn sgd_panics_on_mismatch() {
        let mut p = vec![0.0f32; 2];
        Sgd { lr: 0.1 }.update(&mut p, &[1.0], &mut Vec::new());
    }
}
