use mprec_tensor::{ops, Matrix};

/// Element-wise nonlinearity applied after a [`crate::Linear`] layer.
///
/// The DLRM bottom/top MLPs use `Relu` on hidden layers; the final CTR
/// output is `Identity` (the loss consumes raw logits) and DHE decoders can
/// use `Sigmoid` on the last layer when producing bounded embeddings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// `max(0, x)`.
    #[default]
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Pass-through.
    Identity,
}

impl Activation {
    /// Applies the activation in place.
    pub fn apply(&self, m: &mut Matrix) {
        match self {
            Activation::Relu => m.map_inplace(|x| x.max(0.0)),
            Activation::Sigmoid => m.map_inplace(ops::sigmoid),
            Activation::Identity => {}
        }
    }

    /// Fused bias-add + activation: `m[r][c] = act(m[r][c] + bias[c])` in a
    /// single pass over the output.
    ///
    /// This is the epilogue of [`crate::Linear::infer_into`]: the plain
    /// forward path makes one pass to add the bias and a second to apply
    /// the activation; fusing them halves the epilogue's memory traffic.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `bias.len() != m.cols()`.
    pub fn apply_with_bias(&self, m: &mut Matrix, bias: &[f32]) {
        let cols = m.cols();
        debug_assert_eq!(cols, bias.len(), "bias width must match output");
        if cols == 0 {
            // A zero-width output has nothing to bias or activate (and
            // `chunks_exact_mut(0)` would panic).
            return;
        }
        match self {
            Activation::Relu => {
                for row in m.as_mut_slice().chunks_exact_mut(cols) {
                    for (v, &b) in row.iter_mut().zip(bias.iter()) {
                        *v = (*v + b).max(0.0);
                    }
                }
            }
            Activation::Sigmoid => {
                for row in m.as_mut_slice().chunks_exact_mut(cols) {
                    for (v, &b) in row.iter_mut().zip(bias.iter()) {
                        *v = ops::sigmoid(*v + b);
                    }
                }
            }
            Activation::Identity => {
                for row in m.as_mut_slice().chunks_exact_mut(cols) {
                    for (v, &b) in row.iter_mut().zip(bias.iter()) {
                        *v += b;
                    }
                }
            }
        }
    }

    /// Multiplies `grad` by the activation derivative, evaluated from the
    /// *activated output* `y` (all three supported activations admit this).
    ///
    /// # Panics
    ///
    /// Panics if `grad` and `y` have different shapes.
    pub fn backprop(&self, grad: &mut Matrix, y: &Matrix) {
        assert_eq!(grad.shape(), y.shape(), "activation backprop shape mismatch");
        match self {
            Activation::Relu => {
                for (g, &out) in grad.as_mut_slice().iter_mut().zip(y.as_slice()) {
                    if out <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            Activation::Sigmoid => {
                for (g, &out) in grad.as_mut_slice().iter_mut().zip(y.as_slice()) {
                    *g *= out * (1.0 - out);
                }
            }
            Activation::Identity => {}
        }
    }

    /// FLOPs per element for this activation (used by the hardware model).
    pub fn flops_per_element(&self) -> u64 {
        match self {
            Activation::Relu => 1,
            Activation::Sigmoid => 4,
            Activation::Identity => 0,
        }
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Activation::Relu => write!(f, "relu"),
            Activation::Sigmoid => write!(f, "sigmoid"),
            Activation::Identity => write!(f, "identity"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut m = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]).unwrap();
        Activation::Relu.apply(&mut m);
        assert_eq!(m.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn sigmoid_maps_into_unit_interval() {
        let mut m = Matrix::from_vec(1, 3, vec![-10.0, 0.0, 10.0]).unwrap();
        Activation::Sigmoid.apply(&mut m);
        assert!(m.as_slice().iter().all(|&x| (0.0..=1.0).contains(&x)));
        assert!((m[(0, 1)] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn relu_backprop_masks_where_output_zero() {
        let y = Matrix::from_vec(1, 3, vec![0.0, 0.0, 2.0]).unwrap();
        let mut g = Matrix::from_vec(1, 3, vec![5.0, 5.0, 5.0]).unwrap();
        Activation::Relu.backprop(&mut g, &y);
        assert_eq!(g.as_slice(), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn sigmoid_backprop_uses_output() {
        let y = Matrix::from_vec(1, 1, vec![0.5]).unwrap();
        let mut g = Matrix::from_vec(1, 1, vec![1.0]).unwrap();
        Activation::Sigmoid.backprop(&mut g, &y);
        assert!((g[(0, 0)] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn apply_with_bias_matches_two_pass() {
        for act in [Activation::Relu, Activation::Sigmoid, Activation::Identity] {
            let vals: Vec<f32> = (0..12).map(|i| (i as f32 - 6.0) * 0.4).collect();
            let bias = [0.3f32, -0.8, 0.1];
            let mut fused = Matrix::from_vec(4, 3, vals.clone()).unwrap();
            act.apply_with_bias(&mut fused, &bias);
            let mut two_pass = Matrix::from_vec(4, 3, vals).unwrap();
            for r in 0..4 {
                for (v, &b) in two_pass.row_mut(r).iter_mut().zip(bias.iter()) {
                    *v += b;
                }
            }
            act.apply(&mut two_pass);
            assert_eq!(fused, two_pass, "activation {act}");
        }
    }

    #[test]
    fn apply_with_bias_tolerates_zero_width() {
        let mut m = Matrix::zeros(3, 0);
        Activation::Relu.apply_with_bias(&mut m, &[]);
        assert_eq!(m.shape(), (3, 0));
    }

    #[test]
    fn identity_is_noop_both_ways() {
        let mut m = Matrix::from_vec(1, 2, vec![-3.0, 3.0]).unwrap();
        let orig = m.clone();
        Activation::Identity.apply(&mut m);
        assert_eq!(m, orig);
        let mut g = Matrix::filled(1, 2, 2.0);
        Activation::Identity.backprop(&mut g, &m);
        assert_eq!(g.as_slice(), &[2.0, 2.0]);
    }
}
