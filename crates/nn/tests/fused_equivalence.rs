//! Property tests: the fused inference paths (`Linear::infer_into`,
//! `Mlp::infer_scratch`) produce exactly the results of the allocating
//! `infer` across random layer shapes, activations, and batch sizes.
//! Exact equality is the contract — fusion changes memory traffic, not
//! arithmetic: `act(v + b)` in one pass computes the identical floats
//! the bias pass + activation pass computed.

use mprec_nn::{Activation, Linear, Mlp, MlpScratch};
use mprec_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn activation(idx: u8) -> Activation {
    match idx % 3 {
        0 => Activation::Relu,
        1 => Activation::Sigmoid,
        _ => Activation::Identity,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn linear_infer_into_matches_infer(
        batch in 1usize..24,
        fan_in in 1usize..32,
        fan_out in 1usize..32,
        act_idx in 0u8..3,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let layer = Linear::new(fan_in, fan_out, activation(act_idx), &mut rng);
        let x = Matrix::from_fn(batch, fan_in, |_, _| rng.gen_range(-3.0f32..3.0));
        let owned = layer.infer(&x).unwrap();
        let mut out = Matrix::zeros(0, 0);
        layer.infer_into(&x, &mut out).unwrap();
        prop_assert_eq!(out, owned);
    }

    #[test]
    fn mlp_infer_scratch_matches_infer(
        batch in 1usize..16,
        h1 in 1usize..24,
        h2 in 1usize..24,
        out_dim in 1usize..8,
        act_idx in 0u8..3,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sizes = [7, h1, h2, out_dim];
        let mlp = Mlp::new(&sizes, activation(act_idx), Activation::Identity, &mut rng)
            .unwrap();
        let x = Matrix::from_fn(batch, 7, |_, _| rng.gen_range(-2.0f32..2.0));
        let mut scratch = MlpScratch::new();
        // Two passes: the second runs against warm (recycled) buffers.
        let _ = mlp.infer_scratch(&x, &mut scratch).unwrap();
        let via_scratch = mlp.infer_scratch(&x, &mut scratch).unwrap().clone();
        prop_assert_eq!(via_scratch, mlp.infer(&x).unwrap());
    }
}
