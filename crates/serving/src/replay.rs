//! Discrete-event replay of the *runtime's* serving semantics.
//!
//! [`crate::simulate`] models the paper's per-query serving experiments;
//! the multi-threaded runtime (`mprec-runtime`) instead micro-batches
//! queries under an SLA-aware deadline/size policy and routes whole
//! batches. This module is the simulator-side counterpart of that
//! contract: given the *same* trace and the *same* virtual-time mapping
//! set, [`replay`] reproduces — by an independent discrete-event
//! implementation — the batch boundaries, the per-batch path decisions,
//! the virtual completion times, and the aggregate outcome counts the
//! runtime's dispatcher produces.
//!
//! The differential harness (`tests/sim_vs_runtime.rs`) holds the two
//! implementations to exact agreement on outcome counts, decision
//! trails, and (via a twin MP-Cache replay) cache hit counters, so the
//! simulated and real serving stacks cannot drift apart silently.
//!
//! # Three-tier cache accounting
//!
//! The MP-Cache's persistent disk tier needs no special-casing here:
//! its latency cost reaches the replay through the mapping profiles
//! themselves (a warm-started joiner's paths arrive pre-penalized via
//! `LatencyProfile::plus_per_sample`, shipped in the cluster's
//! `replay_spec()`), so routing and virtual times agree with the
//! runtime automatically. The *hit accounting* is pinned by the twin
//! replay instead: the harness mirrors the warm-start hand-off (old
//! owners' dynamic exports loaded into the joiner twin's disk tier at
//! the join barrier) and then demands exact per-node equality of
//! static/dynamic/disk hit counters.

use std::cell::RefCell;
use std::collections::BTreeMap;

use mprec_core::candidates::RepRole;
use mprec_core::planner::MappingSet;
use mprec_core::scheduler::{class_pressure_mask, select_mapping, Scheduler, SchedulerConfig};
use mprec_data::query::Query;
use mprec_data::scenario::{self, ChaosConfig, FaultPlan};
use mprec_data::traffic::SlaClass;
use mprec_trace::{TraceConfig, TraceEvent, TraceRecording};

use crate::outcome::{PathUsage, ServingOutcome};

/// Micro-batching policy mirrored from the runtime engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayConfig {
    /// SLA latency target in microseconds (the default class when
    /// `classes` is empty or a tenant has no entry).
    pub sla_us: f64,
    /// Sample budget: a pending batch flushes at this size.
    pub max_batch_samples: usize,
    /// Deadline: a pending batch flushes this long after its oldest
    /// query arrived.
    pub max_batch_wait_us: f64,
    /// Per-tenant SLA classes, indexed by the query-id tenant field
    /// (mirror of the runtime's `TrafficConfig::class_of`). Empty keeps
    /// the legacy single-class behaviour: every tenant is strict at
    /// `sla_us`, nothing is shed, and no candidate is class-masked.
    pub classes: Vec<SlaClass>,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            sla_us: 10_000.0,
            max_batch_samples: 256,
            max_batch_wait_us: 2_000.0,
            classes: Vec::new(),
        }
    }
}

impl ReplayConfig {
    /// The SLA class governing `tenant`'s batches: its `classes` entry,
    /// or a strict class at `sla_us` (identical to the runtime's
    /// fallback for legacy traffic and out-of-range tenant fields).
    pub fn class_of(&self, tenant: usize) -> SlaClass {
        self.classes
            .get(tenant)
            .copied()
            .unwrap_or_else(|| SlaClass::strict(self.sla_us))
    }
}

/// The SLA-class degrade rank the replay derives from a mapping's
/// representation role — the twin of `mprec-runtime`'s
/// `degrade_rank(path)`, which the runtime computes from its path
/// kinds. Hybrid masks first under class pressure, DHE variants at the
/// table-only rung, and everything else (table paths) never.
pub fn degrade_rank_of(role: RepRole) -> u32 {
    match role {
        RepRole::Hybrid => 2,
        RepRole::Dhe | RepRole::DheCompact => 1,
        _ => 0,
    }
}

/// One tenant's replay-side accounting row — the twin of the runtime's
/// `TenantReport`, carrying exactly the counters the differential tests
/// pin to equality (histogram shapes follow from equal latencies).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TenantOutcome {
    /// Queries routed and completed for this tenant.
    pub completed: u64,
    /// Samples inside those queries.
    pub samples: u64,
    /// Queries shed before routing (class shed plus, for the cluster
    /// replay, the chaos brownout's sequence-modulus shed).
    pub shed_queries: u64,
    /// Completed queries whose virtual latency exceeded the tenant
    /// class's SLA.
    pub sla_violations: u64,
    /// Sum of virtual latencies over completed queries (µs) — pins the
    /// full latency ledger without shipping a histogram type across the
    /// crate boundary.
    pub latency_sum_us: f64,
}

/// One routed micro-batch of the replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayBatch {
    /// Index into `mappings.mappings` of the routed path.
    pub mapping_idx: usize,
    /// `(query id, size)` pairs in arrival order.
    pub queries: Vec<(u64, u64)>,
    /// Virtual completion time of the batch (µs).
    pub done_us: f64,
}

/// Everything one replay produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayResult {
    /// Aggregate outcome; latencies are *virtual* (completion minus
    /// arrival), directly comparable to the runtime's virtual-time SLA
    /// accounting but not to its measured histogram.
    pub outcome: ServingOutcome,
    /// The full batch/decision trail, in dispatch order.
    pub batches: Vec<ReplayBatch>,
    /// Queries class-shed before routing (0 without SLA classes).
    pub shed_queries: u64,
    /// Per-tenant accounting rows, indexed by tenant id — the twin of
    /// `RuntimeReport::tenants`.
    pub tenants: Vec<TenantOutcome>,
}

impl ReplayResult {
    /// Mapping index per batch — the decision trail differential tests
    /// compare against `RuntimeReport::path_decisions`.
    pub fn decisions(&self) -> Vec<usize> {
        self.batches.iter().map(|b| b.mapping_idx).collect()
    }
}

/// Replays `trace` through the runtime's micro-batching + routing
/// contract over `mappings` in deterministic virtual time.
///
/// Semantics (kept in lockstep with `mprec-runtime`'s dispatcher, and
/// pinned by the differential tests):
///
/// 1. a pending batch flushes at `oldest arrival + max_batch_wait_us`
///    when the next arrival lies beyond that deadline;
/// 2. a query that would push the pending batch over
///    `max_batch_samples` flushes the batch first (at the query's
///    arrival time);
/// 3. reaching `max_batch_samples` flushes immediately;
/// 4. the final partial batch flushes at its deadline;
/// 5. each flush routes via Algorithm 2 (`Scheduler::route`) with the
///    batch's remaining SLA budget, measured from the oldest query.
pub fn replay(mappings: &MappingSet, trace: &[Query], cfg: &ReplayConfig) -> ReplayResult {
    replay_traced(mappings, trace, cfg, TraceConfig::default()).0
}

/// [`replay`] with a flight recorder: when `recorder.enabled`, the
/// replay's dispatcher decisions are recorded into a `dispatcher` track
/// in exactly the runtime engine's event order and virtual stamps —
/// `Enqueue` at admission, then per flush `BatchFormed`,
/// `RouteDecision` (with every candidate's scored completion),
/// `Execute`, and one `Complete` per query. The differential tests
/// compare this track's twin-pinned events against the runtime's.
pub fn replay_traced(
    mappings: &MappingSet,
    trace: &[Query],
    cfg: &ReplayConfig,
    recorder: TraceConfig,
) -> (ReplayResult, Option<TraceRecording>) {
    let labels: Vec<String> = mappings
        .mappings
        .iter()
        .map(|m| m.label(&mappings.platforms))
        .collect();
    let mut sched = Scheduler::new(mappings.clone(), SchedulerConfig::default());
    let ranks: Vec<u32> = mappings
        .mappings
        .iter()
        .map(|m| degrade_rank_of(m.rep.role))
        .collect();
    let tenant_count = tenant_count_of(trace, cfg);
    let mut tenants: Vec<TenantOutcome> = vec![TenantOutcome::default(); tenant_count];
    let mut batches: Vec<ReplayBatch> = Vec::new();
    let mut usage = PathUsage::default();
    let mut latencies: Vec<f64> = Vec::with_capacity(trace.len());
    let mut samples = 0u64;
    let mut correct = 0.0f64;
    let mut violations = 0u64;
    let mut shed_queries = 0u64;
    let mut last_completion = 0.0f64;
    // RefCell because admission (Enqueue) and flush both record; the
    // two closures otherwise could not share a `&mut` ring.
    let ring = RefCell::new(recorder.ring());
    let mut completions: Vec<f64> = Vec::new();

    let flush = |pending: &mut Vec<&Query>, pending_samples: &mut u64, tenant: usize, flush_at_us: f64| {
        let class = cfg.class_of(tenant);
        let oldest_us = pending[0].arrival_us as f64;
        sched.advance_to(flush_at_us);
        let backlog_us = sched.max_backlog_us();
        if class.sheds(backlog_us) {
            // Class shed, mirroring the engine: the loose tenant's
            // whole batch takes an explicit Shed outcome.
            let tt = &mut tenants[tenant];
            for q in pending.iter() {
                shed_queries += 1;
                tt.shed_queries += 1;
                if let Some(r) = ring.borrow_mut().as_mut() {
                    r.record(TraceEvent::shed(flush_at_us, q.id, q.size as u64, backlog_us));
                }
            }
            pending.clear();
            *pending_samples = 0;
            return;
        }
        let sla_remaining = (class.sla_us - (flush_at_us - oldest_us)).max(1.0);
        let decision = sched
            .route_classed_into(
                *pending_samples,
                sla_remaining,
                &ranks,
                class.narrow_backlog_us,
                class.table_only_backlog_us,
                &mut completions,
            )
            .expect("mapping set is never empty");
        let done_us = sched.commit(&decision);
        let batch = batches.len() as u64;
        if let Some(r) = ring.borrow_mut().as_mut() {
            r.record(TraceEvent::batch_formed(
                flush_at_us,
                batch,
                pending.len() as u64,
                *pending_samples,
                oldest_us,
            ));
            r.record(TraceEvent::route_decision(
                flush_at_us,
                batch,
                *pending_samples,
                0,
                sla_remaining,
                decision.mapping_idx as i32,
                &completions,
            ));
            r.record(TraceEvent::execute(
                done_us - decision.exec_us,
                batch,
                0,
                done_us,
            ));
        }
        let accuracy = mappings.mappings[decision.mapping_idx].rep.accuracy as f64;
        let label = &labels[decision.mapping_idx];
        let mut queries = Vec::with_capacity(pending.len());
        let tt = &mut tenants[tenant];
        for q in pending.iter() {
            let latency = done_us - q.arrival_us as f64;
            if latency > class.sla_us {
                violations += 1;
                tt.sla_violations += 1;
            }
            tt.completed += 1;
            tt.samples += q.size as u64;
            tt.latency_sum_us += latency;
            if let Some(r) = ring.borrow_mut().as_mut() {
                r.record(TraceEvent::complete(done_us, q.id, batch, latency));
            }
            latencies.push(latency);
            samples += q.size as u64;
            correct += q.size as f64 * accuracy;
            usage.record(label, q.size as u64);
            queries.push((q.id, q.size as u64));
        }
        last_completion = last_completion.max(done_us);
        batches.push(ReplayBatch {
            mapping_idx: decision.mapping_idx,
            queries,
            done_us,
        });
        pending.clear();
        *pending_samples = 0;
    };
    let on_admit = |q: &Query| {
        if let Some(r) = ring.borrow_mut().as_mut() {
            r.record(TraceEvent::enqueue(q.arrival_us as f64, q.id, q.size as u64));
        }
    };
    drive_batches(trace, cfg, tenant_count, on_admit, flush);

    let outcome = ServingOutcome::from_latency_samples(
        "replay",
        latencies,
        samples,
        correct,
        violations,
        last_completion / 1e6,
        usage,
    );
    let trace_rec = recorder.enabled.then(|| {
        let mut rec = TraceRecording::new(labels);
        if let Some(r) = ring.into_inner() {
            rec.push_ring("dispatcher", r);
        }
        rec
    });
    (
        ReplayResult {
            outcome,
            batches,
            shed_queries,
            tenants,
        },
        trace_rec,
    )
}

/// Replays `trace` through a **closed-loop** load driver over the same
/// mapping set: one outstanding query at a time, the next send gated on
/// the previous completion, latency measured from the *send* instant.
/// This is the classic coordinated-omission trap — under overload the
/// driver silently slows its offered rate, so queue delay the intended
/// schedule would have accrued never shows up in the measured tail. The
/// regression test pins [`replay`]'s open-loop p99 strictly above this
/// driver's p99 on an overloaded cell, so the trap cannot quietly
/// become the default again.
pub fn replay_closed_loop(
    mappings: &MappingSet,
    trace: &[Query],
    cfg: &ReplayConfig,
) -> ReplayResult {
    let labels: Vec<String> = mappings
        .mappings
        .iter()
        .map(|m| m.label(&mappings.platforms))
        .collect();
    let mut sched = Scheduler::new(mappings.clone(), SchedulerConfig::default());
    let tenant_count = tenant_count_of(trace, cfg);
    let mut tenants: Vec<TenantOutcome> = vec![TenantOutcome::default(); tenant_count];
    let mut batches: Vec<ReplayBatch> = Vec::new();
    let mut usage = PathUsage::default();
    let mut latencies: Vec<f64> = Vec::with_capacity(trace.len());
    let mut samples = 0u64;
    let mut correct = 0.0f64;
    let mut violations = 0u64;
    let mut last_completion = 0.0f64;
    let mut completions: Vec<f64> = Vec::new();
    let mut next_free = 0.0f64;
    for q in trace {
        // The closed-loop driver cannot send before the previous query
        // finished: an overloaded cell pushes the send time back, and
        // with it the measurement origin.
        let send_us = (q.arrival_us as f64).max(next_free);
        sched.advance_to(send_us);
        let decision = sched
            .route_into(q.size as u64, cfg.sla_us, 0, &mut completions)
            .expect("mapping set is never empty");
        let done_us = sched.commit(&decision);
        next_free = done_us;
        let latency = done_us - send_us;
        if latency > cfg.sla_us {
            violations += 1;
        }
        let tenant = scenario::tenant_of(q.id) as usize;
        let tt = &mut tenants[tenant];
        tt.completed += 1;
        tt.samples += q.size as u64;
        tt.latency_sum_us += latency;
        if latency > cfg.class_of(tenant).sla_us {
            tt.sla_violations += 1;
        }
        latencies.push(latency);
        samples += q.size as u64;
        correct += q.size as f64 * mappings.mappings[decision.mapping_idx].rep.accuracy as f64;
        usage.record(&labels[decision.mapping_idx], q.size as u64);
        last_completion = last_completion.max(done_us);
        batches.push(ReplayBatch {
            mapping_idx: decision.mapping_idx,
            queries: vec![(q.id, q.size as u64)],
            done_us,
        });
    }
    let outcome = ServingOutcome::from_latency_samples(
        "replay-closed-loop",
        latencies,
        samples,
        correct,
        violations,
        last_completion / 1e6,
        usage,
    );
    ReplayResult {
        outcome,
        batches,
        shed_queries: 0,
        tenants,
    }
}

/// Tenant-axis length shared by the replay drivers: one row per tenant
/// seen in the trace, at least one row, and never fewer rows than the
/// configured class list (so an all-shed tenant still gets its row).
fn tenant_count_of(trace: &[Query], cfg: &ReplayConfig) -> usize {
    trace
        .iter()
        .map(|q| scenario::tenant_of(q.id) as usize + 1)
        .max()
        .unwrap_or(1)
        .max(cfg.classes.len())
        .max(1)
}

/// The runtime dispatcher's micro-batching rules (per-tenant pending
/// lists, deadline flushes in (deadline, tenant) order, size-overflow
/// flush, exact-budget flush, end-of-trace drain), invoking
/// `flush(pending, pending_samples, tenant, flush_at_us)` at every
/// batch boundary with a non-empty `pending` and `on_admit(q)` right
/// after each query joins its tenant's pending batch (where the
/// runtime stamps its `Enqueue` trace event — admission order is part
/// of the twin contract). A legacy trace (every id tenant 0) collapses
/// to the historical single-pending behaviour bit for bit.
///
/// Shared by [`replay`] and [`replay_cluster`]: the independence
/// contract is between this crate and `mprec-runtime`, not between the
/// two sims — a batching-rule change must reach both at once or the
/// differential tests would pin one twin to stale semantics.
fn drive_batches<'t>(
    trace: &'t [Query],
    cfg: &ReplayConfig,
    tenant_count: usize,
    mut on_admit: impl FnMut(&'t Query),
    mut flush: impl FnMut(&mut Vec<&'t Query>, &mut u64, usize, f64),
) {
    let mut pending: Vec<Vec<&Query>> = vec![Vec::new(); tenant_count];
    let mut pending_samples: Vec<u64> = vec![0; tenant_count];
    // Earliest batch deadline among tenants with pending queries (ties
    // keep the lowest tenant index — the scan is ascending).
    let earliest_deadline = |pending: &[Vec<&Query>]| -> Option<(f64, usize)> {
        let mut due: Option<(f64, usize)> = None;
        for (t, p) in pending.iter().enumerate() {
            if let Some(first) = p.first() {
                let d = first.arrival_us as f64 + cfg.max_batch_wait_us;
                if due.is_none_or(|(bd, _)| d < bd) {
                    due = Some((d, t));
                }
            }
        }
        due
    };
    for q in trace {
        let arrival_us = q.arrival_us as f64;
        while let Some((deadline, t)) = earliest_deadline(&pending) {
            if arrival_us <= deadline {
                break;
            }
            flush(&mut pending[t], &mut pending_samples[t], t, deadline);
        }
        let t = scenario::tenant_of(q.id) as usize;
        if !pending[t].is_empty()
            && pending_samples[t] + q.size as u64 > cfg.max_batch_samples as u64
        {
            flush(&mut pending[t], &mut pending_samples[t], t, arrival_us);
        }
        pending[t].push(q);
        pending_samples[t] += q.size as u64;
        on_admit(q);
        if pending_samples[t] >= cfg.max_batch_samples as u64 {
            flush(&mut pending[t], &mut pending_samples[t], t, arrival_us);
        }
    }
    while let Some((deadline, t)) = earliest_deadline(&pending) {
        flush(&mut pending[t], &mut pending_samples[t], t, deadline);
    }
}

/// One epoch of an elastic cluster as the replay simulator sees it: the
/// routing profiles in force and, per mapping, the pruned scatter
/// target node ids (ascending, matching the runtime's assignment
/// order).
#[derive(Debug, Clone)]
pub struct ClusterEpochSpec {
    /// Capacity-aware slowest-shard mapping set of the epoch.
    pub mappings: MappingSet,
    /// Per mapping index: the scatter target node ids.
    pub targets: Vec<Vec<u32>>,
    /// Live node ids during the epoch, ascending (the brownout gauge
    /// scans exactly these backlogs).
    pub live: Vec<u32>,
    /// Per live node: its consistent-hash-ring successor, the hedge
    /// target for a slow scatter leg. Frozen by the runtime at epoch
    /// build time so the replay needs no ring logic of its own.
    pub hedge_next: Vec<(u32, u32)>,
}

/// One rebalance event separating two epochs. The runtime expands every
/// configured churn event into one or more of these: a failure stays a
/// single barrier swap, while a streaming join unrolls into its
/// dual-ownership window open, one event per chunk flip, and the
/// cold-tier penalty lift; adaptive re-plans append further events
/// after the static schedule. The replay needs no migration-specific
/// logic — each event just advances it to the next epoch's profiles and
/// target sets at the first flush at or after `at_us`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterChurnSpec {
    /// Virtual time of the event (µs); takes effect at the first flush
    /// at or after it.
    pub at_us: f64,
    /// `Some(node)` for a failure (in-flight batches to it retry under
    /// the next epoch), `None` for every other rebalance step — joins,
    /// window opens, chunk flips, penalty lifts, adaptive re-plans —
    /// none of which retries anything.
    pub failed: Option<u32>,
}

/// Everything the cluster replay needs: the epoch sequence and the
/// events between consecutive epochs (`events.len() ==
/// epochs.len() - 1`). Produced by `mprec-runtime`'s
/// `Cluster::replay_spec`, consumed by [`replay_cluster`].
#[derive(Debug, Clone)]
pub struct ClusterReplaySpec {
    /// Epoch descriptions, boot epoch first.
    pub epochs: Vec<ClusterEpochSpec>,
    /// The churn events separating consecutive epochs.
    pub events: Vec<ClusterChurnSpec>,
    /// The deterministic fault schedule the runtime injected (empty
    /// when chaos is off) — the replay resolves every leg against the
    /// same windows.
    pub faults: FaultPlan,
    /// The lifecycle-hardening knobs in force (timeouts, hedging,
    /// backoff, brownout). The inert default reproduces the legacy
    /// single-attempt accounting bit for bit.
    pub chaos: ChaosConfig,
    /// Brownout degrade rank per mapping index (2 = hybrid, masked
    /// first; 1 = DHE; 0 = table, never masked). Computed by the
    /// runtime from its path kinds.
    pub degrade_rank: Vec<u32>,
}

/// One routed micro-batch of a cluster replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReplayBatch {
    /// Index into the epoch's `mappings.mappings` of the routed path.
    pub mapping_idx: usize,
    /// The epoch whose plan the batch finally *executed* under (differs
    /// from its dispatch epoch only for failure retries).
    pub epoch_idx: usize,
    /// `(query id, size)` pairs in arrival order.
    pub queries: Vec<(u64, u64)>,
    /// Virtual completion time of the batch (µs) — after the retry leg
    /// for batches whose node failed in flight.
    pub done_us: f64,
    /// Whether an in-flight node failure forced a retry.
    pub retried: bool,
}

/// Everything one cluster replay produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReplayResult {
    /// Aggregate outcome over *virtual* latencies; for retried batches
    /// each query carries the full latency (failed attempt + retry).
    pub outcome: ServingOutcome,
    /// The full batch trail, in dispatch order.
    pub batches: Vec<ClusterReplayBatch>,
    /// Batches that retried after an in-flight node failure.
    pub retried_batches: u64,
    /// Queries shed before routing — the tenant-class shed plus the
    /// brownout controller's sequence-modulus rung (twin of
    /// `ClusterReport::shed_queries`).
    pub shed_queries: u64,
    /// Per-tenant accounting rows, indexed by tenant id — the twin of
    /// `ClusterReport::tenants`.
    pub tenants: Vec<TenantOutcome>,
    /// Scatter legs that missed their per-leg virtual deadline (twin of
    /// `ClusterReport::leg_timeouts`).
    pub leg_timeouts: u64,
    /// Hedge legs issued to ring successors (twin of
    /// `ClusterReport::hedged_legs`).
    pub hedged_legs: u64,
    /// Backoff retries of timed-out legs (twin of
    /// `ClusterReport::leg_retries`).
    pub leg_retries: u64,
}

/// Replays `trace` through the **elastic cluster's** serving contract:
/// the runtime's micro-batching (identical to [`replay`]), Algorithm-2
/// routing over per-*node* backlogs (a dispatched batch occupies every
/// scatter target until its merge completes; the router sees the
/// busiest target's queue), epoch switching at churn events, and
/// failure retries — an in-flight batch whose target fails restarts at
/// the failure instant under the next epoch's profiles, its queries
/// charged both legs' latency.
///
/// This is an independent re-implementation of
/// `mprec-runtime::cluster`'s dispatcher; `tests/sim_vs_runtime.rs`
/// pins the two to exact agreement, node churn included.
pub fn replay_cluster(
    spec: &ClusterReplaySpec,
    trace: &[Query],
    cfg: &ReplayConfig,
) -> ClusterReplayResult {
    replay_cluster_traced(spec, trace, cfg, TraceConfig::default()).0
}

/// [`replay_cluster`] with a flight recorder: when `recorder.enabled`,
/// the replay records a `dispatcher` track in exactly the cluster
/// runtime's event order and virtual stamps — `Enqueue` at admission,
/// then per flush `BatchFormed`, `RouteDecision` (with the rejected
/// candidates' scored completions), one `Scatter` per pruned target,
/// a `Retry` plus post-failure `Scatter`s per retry leg, `Execute`,
/// and one `Complete` per query. Epoch barriers and warm-start
/// hand-offs are runtime-membership events and are deliberately *not*
/// replayed (they are not twin-pinned).
pub fn replay_cluster_traced(
    spec: &ClusterReplaySpec,
    trace: &[Query],
    cfg: &ReplayConfig,
    recorder: TraceConfig,
) -> (ClusterReplayResult, Option<TraceRecording>) {
    assert_eq!(
        spec.events.len() + 1,
        spec.epochs.len(),
        "one event between consecutive epochs"
    );
    let labels: Vec<String> = spec.epochs[0]
        .mappings
        .mappings
        .iter()
        .map(|m| m.label(&spec.epochs[0].mappings.platforms))
        .collect();
    let tenant_count = tenant_count_of(trace, cfg);
    let mut tenants: Vec<TenantOutcome> = vec![TenantOutcome::default(); tenant_count];
    let mut batches: Vec<ClusterReplayBatch> = Vec::new();
    let mut usage = PathUsage::default();
    let mut latencies: Vec<f64> = Vec::with_capacity(trace.len());
    let mut samples = 0u64;
    let mut correct = 0.0f64;
    let mut violations = 0u64;
    let mut retried_batches = 0u64;
    let mut shed_queries = 0u64;
    let mut leg_timeouts = 0u64;
    let mut hedged_legs = 0u64;
    let mut leg_retries = 0u64;
    let mut last_completion = 0.0f64;
    let mut free_at: BTreeMap<u32, f64> = BTreeMap::new();
    let mut cur_epoch = 0usize;
    let ring = RefCell::new(recorder.ring());

    let flush = |pending: &mut Vec<&Query>, pending_samples: &mut u64, tenant: usize, flush_at_us: f64| {
        while cur_epoch < spec.events.len() && spec.events[cur_epoch].at_us <= flush_at_us {
            cur_epoch += 1;
        }
        let e = cur_epoch;
        let ep = &spec.epochs[e];
        // Brownout gauge, class shed, then the chaos shed rung,
        // mirroring the runtime's flush exactly: worst live-node
        // backlog; a loose tenant class drops its whole batch at its
        // shed rung; then the sequence-modulus shed — every dropped
        // query takes an explicit Shed outcome.
        let backlog_us = ep
            .live
            .iter()
            .map(|id| (free_at.get(id).copied().unwrap_or(0.0) - flush_at_us).max(0.0))
            .fold(0.0f64, f64::max);
        let class = cfg.class_of(tenant);
        if class.sheds(backlog_us) {
            let tt = &mut tenants[tenant];
            for q in pending.iter() {
                shed_queries += 1;
                tt.shed_queries += 1;
                if let Some(r) = ring.borrow_mut().as_mut() {
                    r.record(TraceEvent::shed(flush_at_us, q.id, q.size as u64, backlog_us));
                }
            }
            pending.clear();
            *pending_samples = 0;
            return;
        }
        if spec.chaos.brownout && backlog_us >= spec.chaos.brownout_shed_us {
            pending.retain(|q| {
                if spec.chaos.sheds(backlog_us, scenario::sequence_of(q.id)) {
                    *pending_samples -= q.size as u64;
                    shed_queries += 1;
                    tenants[tenant].shed_queries += 1;
                    if let Some(r) = ring.borrow_mut().as_mut() {
                        r.record(TraceEvent::shed(flush_at_us, q.id, q.size as u64, backlog_us));
                    }
                    false
                } else {
                    true
                }
            });
            if pending.is_empty() {
                *pending_samples = 0;
                return;
            }
        }
        let oldest_us = pending[0].arrival_us as f64;
        let sla_remaining = (class.sla_us - (flush_at_us - oldest_us)).max(1.0);
        let size = *pending_samples;

        let n = ep.mappings.mappings.len();
        let mut execs = Vec::with_capacity(n);
        let mut starts = Vec::with_capacity(n);
        let mut completions = Vec::with_capacity(n);
        for i in 0..n {
            let exec = ep.mappings.mappings[i].profile.latency_us(size);
            let busiest = ep.targets[i]
                .iter()
                .map(|id| free_at.get(id).copied().unwrap_or(0.0))
                .fold(f64::NEG_INFINITY, f64::max);
            let start = busiest.max(flush_at_us);
            execs.push(exec);
            starts.push(start);
            completions.push((start - flush_at_us) + exec);
        }
        spec.chaos
            .brownout_mask(&spec.degrade_rank, backlog_us, &mut completions);
        class_pressure_mask(
            &spec.degrade_rank,
            backlog_us,
            class.narrow_backlog_us,
            class.table_only_backlog_us,
            &mut completions,
        );
        let idx = select_mapping(&ep.mappings, &completions, sla_remaining, true)
            .expect("mapping set is never empty");
        let batch = batches.len() as u64;
        if let Some(r) = ring.borrow_mut().as_mut() {
            r.record(TraceEvent::batch_formed(
                flush_at_us,
                batch,
                pending.len() as u64,
                size,
                oldest_us,
            ));
            r.record(TraceEvent::route_decision(
                flush_at_us,
                batch,
                size,
                e as u64,
                sla_remaining,
                idx as i32,
                &completions,
            ));
            for id in &ep.targets[idx] {
                r.record(TraceEvent::scatter(flush_at_us, batch, *id, e as u64));
            }
        }
        let mut done_us;
        let mut final_exec = execs[idx];
        if spec.chaos.timeouts_enabled() {
            // Chaos leg resolution — the independent mirror of the
            // runtime dispatcher's timeout/hedge/backoff ladder. Every
            // attempt is charged to its node's ledger, lost or not.
            let chaos = spec.chaos;
            let exec = execs[idx];
            let start_us = starts[idx];
            let timeout = chaos.timeout_mult * exec;
            let mut batch_done = f64::NEG_INFINITY;
            for &id in &ep.targets[idx] {
                let mut a_start = start_us;
                let mut attempt = 0u32;
                let leg_done = loop {
                    let eff = exec * spec.faults.straggler_multiplier(id, a_start);
                    let lost = spec.faults.drops_leg(id, a_start, attempt);
                    let f = free_at.entry(id).or_insert(0.0);
                    *f = f.max(a_start) + eff;
                    let mut cand = if lost { f64::INFINITY } else { a_start + eff };
                    let deadline = a_start + timeout;
                    if attempt == 0
                        && chaos.hedging
                        && cand > a_start + chaos.hedge_frac * timeout
                    {
                        let hedge_to = ep
                            .hedge_next
                            .iter()
                            .find(|&&(n, _)| n == id)
                            .map(|&(_, s)| s);
                        if let Some(h) = hedge_to {
                            let hedge_at = a_start + chaos.hedge_frac * timeout;
                            let h_start =
                                free_at.get(&h).copied().unwrap_or(0.0).max(hedge_at);
                            let h_eff = exec * spec.faults.straggler_multiplier(h, h_start);
                            let h_lost = spec.faults.drops_leg(h, h_start, 1);
                            free_at.insert(h, h_start + h_eff);
                            hedged_legs += 1;
                            if let Some(r) = ring.borrow_mut().as_mut() {
                                r.record(TraceEvent::hedge(hedge_at, batch, id, h));
                            }
                            if !h_lost {
                                cand = cand.min(h_start + h_eff);
                            }
                        }
                    }
                    if cand <= deadline {
                        break cand;
                    }
                    leg_timeouts += 1;
                    if let Some(r) = ring.borrow_mut().as_mut() {
                        r.record(TraceEvent::timeout(deadline, batch, id, attempt, timeout));
                    }
                    if attempt >= chaos.max_retries {
                        let f = free_at.entry(id).or_insert(0.0);
                        *f = f.max(deadline) + exec;
                        break deadline + exec;
                    }
                    attempt += 1;
                    leg_retries += 1;
                    a_start = deadline + chaos.backoff_base_us * (1u64 << (attempt - 1)) as f64;
                };
                batch_done = batch_done.max(leg_done);
            }
            done_us = batch_done;
        } else {
            done_us = starts[idx] + execs[idx];
            for id in &ep.targets[idx] {
                let f = free_at.entry(*id).or_insert(0.0);
                *f = f.max(flush_at_us) + execs[idx];
            }
        }

        // Failure retries, mirroring the runtime's fault model exactly.
        let mut exec_epoch = e;
        let mut retried = false;
        let mut scan = e;
        while scan < spec.events.len() {
            let ev = spec.events[scan];
            if ev.at_us >= done_us {
                break;
            }
            if let Some(failed) = ev.failed {
                if spec.epochs[exec_epoch].targets[idx].contains(&failed) {
                    exec_epoch = scan + 1;
                    retried = true;
                    retried_batches += 1;
                    let retry_ep = &spec.epochs[exec_epoch];
                    let retry_exec = retry_ep.mappings.mappings[idx].profile.latency_us(size);
                    let retry_start = retry_ep.targets[idx]
                        .iter()
                        .map(|id| free_at.get(id).copied().unwrap_or(0.0))
                        .fold(f64::NEG_INFINITY, f64::max)
                        .max(ev.at_us);
                    done_us = retry_start + retry_exec;
                    final_exec = retry_exec;
                    if let Some(r) = ring.borrow_mut().as_mut() {
                        r.record(TraceEvent::retry(ev.at_us, batch, failed, exec_epoch as u64));
                        for id in &retry_ep.targets[idx] {
                            r.record(TraceEvent::scatter(ev.at_us, batch, *id, exec_epoch as u64));
                        }
                    }
                    for id in &retry_ep.targets[idx] {
                        let f = free_at.entry(*id).or_insert(0.0);
                        *f = f.max(ev.at_us) + retry_exec;
                    }
                }
            }
            scan += 1;
        }

        if let Some(r) = ring.borrow_mut().as_mut() {
            r.record(TraceEvent::execute(
                done_us - final_exec,
                batch,
                exec_epoch as u64,
                done_us,
            ));
        }
        let accuracy = ep.mappings.mappings[idx].rep.accuracy as f64;
        let label = &labels[idx];
        let mut queries = Vec::with_capacity(pending.len());
        let tt = &mut tenants[tenant];
        for q in pending.iter() {
            let latency = done_us - q.arrival_us as f64;
            if latency > class.sla_us {
                violations += 1;
                tt.sla_violations += 1;
            }
            tt.completed += 1;
            tt.samples += q.size as u64;
            tt.latency_sum_us += latency;
            if let Some(r) = ring.borrow_mut().as_mut() {
                r.record(TraceEvent::complete(done_us, q.id, batch, latency));
            }
            latencies.push(latency);
            samples += q.size as u64;
            correct += q.size as f64 * accuracy;
            usage.record(label, q.size as u64);
            queries.push((q.id, q.size as u64));
        }
        last_completion = last_completion.max(done_us);
        batches.push(ClusterReplayBatch {
            mapping_idx: idx,
            epoch_idx: exec_epoch,
            queries,
            done_us,
            retried,
        });
        pending.clear();
        *pending_samples = 0;
    };
    let on_admit = |q: &Query| {
        if let Some(r) = ring.borrow_mut().as_mut() {
            r.record(TraceEvent::enqueue(q.arrival_us as f64, q.id, q.size as u64));
        }
    };
    drive_batches(trace, cfg, tenant_count, on_admit, flush);

    let outcome = ServingOutcome::from_latency_samples(
        "replay-cluster",
        latencies,
        samples,
        correct,
        violations,
        last_completion / 1e6,
        usage,
    );
    let trace_rec = recorder.enabled.then(|| {
        let mut rec = TraceRecording::new(labels);
        if let Some(r) = ring.into_inner() {
            rec.push_ring("dispatcher", r);
        }
        rec
    });
    (
        ClusterReplayResult {
            outcome,
            batches,
            retried_batches,
            shed_queries,
            tenants,
            leg_timeouts,
            hedged_legs,
            leg_retries,
        },
        trace_rec,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mprec_core::candidates::{CandidateRep, RepRole};
    use mprec_core::planner::Mapping;
    use mprec_core::profile::LatencyProfile;
    use mprec_data::query::{QueryGenerator, QueryTraceConfig};
    use mprec_hwsim::{Platform, WorkloadBuilder};

    /// A two-path mapping set with analytic profiles: a slow accurate
    /// path and a fast fallback.
    fn two_path_mappings() -> MappingSet {
        let builder = WorkloadBuilder::new("replay-test", vec![1000, 1000], 8);
        let sizes: Vec<u64> = vec![1, 16, 64, 256, 1024, 4096];
        let mk = |name: &str, role, per_sample_us: f64, accuracy| Mapping {
            rep: CandidateRep {
                name: name.into(),
                role,
                config: mprec_embed::RepresentationConfig::table(8),
                workload: builder.table(8).expect("workload"),
                accuracy,
            },
            platform_idx: 0,
            profile: LatencyProfile::from_points(
                sizes.clone(),
                sizes.iter().map(|&n| 30.0 + n as f64 * per_sample_us).collect(),
            ),
        };
        MappingSet {
            platforms: vec![Platform::cpu()],
            mappings: vec![
                mk("hybrid", RepRole::Hybrid, 40.0, 0.79),
                mk("table", RepRole::Table, 2.0, 0.78),
            ],
        }
    }

    fn trace() -> Vec<Query> {
        QueryGenerator::new(
            QueryTraceConfig {
                num_queries: 400,
                mean_size: 6.0,
                sigma: 1.0,
                max_size: 24,
                qps: 4000.0,
                poisson_arrivals: true,
            },
            7,
        )
        .generate()
    }

    #[test]
    fn replay_completes_every_query_exactly_once() {
        let cfg = ReplayConfig {
            sla_us: 5_000.0,
            max_batch_samples: 48,
            max_batch_wait_us: 2_000.0,
            ..ReplayConfig::default()
        };
        let r = replay(&two_path_mappings(), &trace(), &cfg);
        assert_eq!(r.outcome.completed, 400);
        let batched: u64 = r.batches.iter().map(|b| b.queries.len() as u64).sum();
        assert_eq!(batched, 400, "batch trail covers the trace");
        assert_eq!(
            r.outcome.usage.queries.values().sum::<u64>(),
            400,
            "usage covers the trace"
        );
        assert!(r.outcome.samples > 0);
    }

    #[test]
    fn batches_respect_the_sample_budget() {
        let cfg = ReplayConfig {
            max_batch_samples: 32,
            ..ReplayConfig::default()
        };
        let r = replay(&two_path_mappings(), &trace(), &cfg);
        for b in &r.batches {
            let head_sizeless: u64 =
                b.queries.iter().map(|&(_, s)| s).sum::<u64>() - b.queries.last().unwrap().1;
            assert!(
                head_sizeless < 32,
                "a batch only exceeds the budget by its final query"
            );
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let cfg = ReplayConfig::default();
        let maps = two_path_mappings();
        let t = trace();
        assert_eq!(replay(&maps, &t, &cfg), replay(&maps, &t, &cfg));
    }

    #[test]
    fn overload_falls_back_to_the_fast_path() {
        // Saturate the slow path: under a tight SLA the scheduler must
        // route later batches to the table fallback.
        let cfg = ReplayConfig {
            sla_us: 1_000.0,
            ..ReplayConfig::default()
        };
        let r = replay(&two_path_mappings(), &trace(), &cfg);
        let table_queries = r.outcome.usage.queries.get("table@CPU").copied().unwrap_or(0);
        assert!(
            table_queries > r.outcome.completed / 2,
            "tight SLA should fall back: {} of {}",
            table_queries,
            r.outcome.completed
        );
    }
}
