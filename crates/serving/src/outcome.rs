//! Serving-run results and per-path usage accounting.

use std::collections::BTreeMap;

/// Per-path usage counters (Fig. 15's switching breakdown).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PathUsage {
    /// Queries served per path label (e.g. `"table@CPU"`).
    pub queries: BTreeMap<String, u64>,
    /// Samples served per path label.
    pub samples: BTreeMap<String, u64>,
}

impl PathUsage {
    /// Records one query on a path.
    pub fn record(&mut self, label: &str, samples: u64) {
        *self.queries.entry(label.to_string()).or_insert(0) += 1;
        *self.samples.entry(label.to_string()).or_insert(0) += samples;
    }

    /// Fraction of queries served by `label`.
    pub fn query_fraction(&self, label: &str) -> f64 {
        let total: u64 = self.queries.values().sum();
        if total == 0 {
            return 0.0;
        }
        *self.queries.get(label).unwrap_or(&0) as f64 / total as f64
    }
}

/// Full result of one serving simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingOutcome {
    /// Policy label.
    pub policy: String,
    /// Queries completed.
    pub completed: u64,
    /// Total samples served.
    pub samples: u64,
    /// Expected correct samples (size x path accuracy summed).
    pub correct_samples: f64,
    /// Wall-clock span of the run (first arrival to last completion), s.
    pub span_s: f64,
    /// Queries whose completion exceeded the SLA target.
    pub sla_violations: u64,
    /// Mean query latency (microseconds).
    pub mean_latency_us: f64,
    /// 95th-percentile query latency (microseconds).
    pub p95_latency_us: f64,
    /// 99th-percentile (tail) query latency (microseconds).
    pub p99_latency_us: f64,
    /// Per-path usage.
    pub usage: PathUsage,
}

impl ServingOutcome {
    /// An all-zero outcome for `policy` (no queries completed) — what a
    /// run reports when the policy's required paths don't exist.
    pub fn empty(policy: impl Into<String>) -> Self {
        ServingOutcome {
            policy: policy.into(),
            completed: 0,
            samples: 0,
            correct_samples: 0.0,
            span_s: 0.0,
            sla_violations: 0,
            mean_latency_us: 0.0,
            p95_latency_us: 0.0,
            p99_latency_us: 0.0,
            usage: PathUsage::default(),
        }
    }

    /// Builds an outcome from raw per-query latencies, computing the
    /// completed count, mean, and exact p95/p99 percentiles — the
    /// simulator's aggregation path. `mprec-runtime` re-exports
    /// [`ServingOutcome`] and fills the same shape, but derives its
    /// percentiles from a streaming log-bucketed histogram (its
    /// latencies are measured across worker threads, not collected into
    /// one vector).
    pub fn from_latency_samples(
        policy: impl Into<String>,
        mut latencies_us: Vec<f64>,
        samples: u64,
        correct_samples: f64,
        sla_violations: u64,
        span_s: f64,
        usage: PathUsage,
    ) -> Self {
        let completed = latencies_us.len() as u64;
        let mean = if latencies_us.is_empty() {
            0.0
        } else {
            latencies_us.iter().sum::<f64>() / latencies_us.len() as f64
        };
        let p95 = percentile(&mut latencies_us, 0.95);
        let p99 = percentile(&mut latencies_us, 0.99);
        ServingOutcome {
            policy: policy.into(),
            completed,
            samples,
            correct_samples,
            span_s,
            sla_violations,
            mean_latency_us: mean,
            p95_latency_us: p95,
            p99_latency_us: p99,
            usage,
        }
    }

    /// Raw throughput (samples/s).
    pub fn raw_sps(&self) -> f64 {
        if self.span_s > 0.0 {
            self.samples as f64 / self.span_s
        } else {
            0.0
        }
    }

    /// Throughput of correct predictions (correct samples/s) — the
    /// paper's headline serving metric.
    pub fn correct_sps(&self) -> f64 {
        if self.span_s > 0.0 {
            self.correct_samples / self.span_s
        } else {
            0.0
        }
    }

    /// Effective model accuracy over all served samples.
    pub fn effective_accuracy(&self) -> f64 {
        if self.samples > 0 {
            self.correct_samples / self.samples as f64
        } else {
            0.0
        }
    }

    /// SLA-violation rate in [0, 1].
    pub fn sla_violation_rate(&self) -> f64 {
        if self.completed > 0 {
            self.sla_violations as f64 / self.completed as f64
        } else {
            0.0
        }
    }
}

/// Percentile of a (will-be-sorted) latency vector; `q` in [0, 1].
pub(crate) fn percentile(values: &mut [f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let idx = ((values.len() as f64 - 1.0) * q).round() as usize;
    values[idx.min(values.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_fractions_sum_to_one() {
        let mut u = PathUsage::default();
        u.record("a", 10);
        u.record("a", 20);
        u.record("b", 30);
        assert!((u.query_fraction("a") - 2.0 / 3.0).abs() < 1e-9);
        assert!((u.query_fraction("a") + u.query_fraction("b") - 1.0).abs() < 1e-9);
        assert_eq!(u.samples["a"], 30);
    }

    #[test]
    fn percentile_picks_order_statistics() {
        let mut v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&mut v, 0.0), 1.0);
        assert_eq!(percentile(&mut v, 0.5), 3.0);
        assert_eq!(percentile(&mut v, 1.0), 5.0);
        let mut empty: Vec<f64> = vec![];
        assert_eq!(percentile(&mut empty, 0.5), 0.0);
    }

    #[test]
    fn outcome_rates_are_consistent() {
        let o = ServingOutcome {
            policy: "test".into(),
            completed: 10,
            samples: 1000,
            correct_samples: 800.0,
            span_s: 2.0,
            sla_violations: 3,
            mean_latency_us: 0.0,
            p95_latency_us: 0.0,
            p99_latency_us: 0.0,
            usage: PathUsage::default(),
        };
        assert_eq!(o.raw_sps(), 500.0);
        assert_eq!(o.correct_sps(), 400.0);
        assert_eq!(o.effective_accuracy(), 0.8);
        assert_eq!(o.sla_violation_rate(), 0.3);
    }
}
