//! Query-serving simulator for the MP-Rec evaluation (paper §5-6).
//!
//! Replays a query trace (lognormal sizes, Poisson arrivals) against a
//! serving **policy** — a static representation-hardware deployment,
//! table-only CPU-GPU switching, even query splitting, or full MP-Rec —
//! and reports the paper's metrics: throughput of correct predictions
//! (Fig. 10/11), path-activation breakdown (Fig. 15), latency percentiles
//! and SLA-violation rates (Fig. 17).
//!
//! The simulation is discrete-event at query granularity: each platform
//! executes queries FIFO; execution times come from the profiled latency
//! curves produced by the offline stage (optionally MP-Cache-adjusted).
//!
//! # Examples
//!
//! ```
//! use mprec_core::candidates::{default_accuracy_book, paper_candidates};
//! use mprec_core::planner::plan;
//! use mprec_data::query::QueryTraceConfig;
//! use mprec_data::DatasetSpec;
//! use mprec_hwsim::Platform;
//! use mprec_serving::{simulate, Policy, ServingConfig};
//!
//! let spec = DatasetSpec::kaggle_sim(100);
//! let candidates = paper_candidates(&spec, &default_accuracy_book(&spec));
//! let mappings = plan(&candidates, &[Platform::cpu(), Platform::gpu()])?;
//! let cfg = ServingConfig {
//!     trace: QueryTraceConfig { num_queries: 200, ..QueryTraceConfig::default() },
//!     ..ServingConfig::default()
//! };
//! let outcome = simulate(&mappings, Policy::MpRec, &cfg);
//! assert_eq!(outcome.completed, 200);
//! # Ok::<(), mprec_core::CoreError>(())
//! ```

mod outcome;
mod policy;
pub mod replay;
mod sim;

pub use outcome::{PathUsage, ServingOutcome};
pub use policy::Policy;
pub use replay::{
    replay, replay_closed_loop, replay_cluster, ClusterChurnSpec, ClusterEpochSpec,
    ClusterReplayBatch, ClusterReplayResult, ClusterReplaySpec, ReplayBatch, ReplayConfig,
    ReplayResult, TenantOutcome,
};
pub use sim::{simulate, simulate_trace, MpCacheEffect, ServingConfig};
