//! The discrete-event serving simulation.

use mprec_core::candidates::RepRole;
use mprec_core::planner::{Mapping, MappingSet};
use mprec_core::profile::{LatencyProfile, PROFILE_SIZES};
use mprec_core::scheduler::{Scheduler, SchedulerConfig};
use mprec_data::query::{QueryGenerator, QueryTraceConfig};
use mprec_hwsim::{Op, Platform};

use crate::outcome::{PathUsage, ServingOutcome};
use crate::Policy;

/// MP-Cache effect applied to compute-path profiles during serving.
///
/// The encoder tier serves `encoder_hit_rate` of lookups from a small
/// cache; misses run the (hash + nearest-centroid) path instead of the
/// decoder MLP. Hit rates come from the Fig. 16 cache analysis
/// (`mprec-bench --bin fig16_mpcache`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpCacheEffect {
    /// Fraction of embedding lookups served by the encoder tier.
    pub encoder_hit_rate: f64,
    /// Decoder-tier centroid count `N` (0 disables the tier: misses run
    /// the full decoder).
    pub decoder_centroids: usize,
}

impl Default for MpCacheEffect {
    fn default() -> Self {
        MpCacheEffect {
            // Measured 2 MB-cache hit rate on the Kaggle-shaped trace.
            encoder_hit_rate: 0.48,
            decoder_centroids: 256,
        }
    }
}

/// Serving-experiment configuration (paper §5.3 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// Query trace shape (10K queries, lognormal mean 128, 1000 QPS).
    pub trace: QueryTraceConfig,
    /// SLA latency target in microseconds (paper default: 10 ms).
    pub sla_us: f64,
    /// MP-Cache effect on DHE/hybrid paths (`None` = caches disabled).
    pub mpcache: Option<MpCacheEffect>,
    /// Trace seed.
    pub seed: u64,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            trace: QueryTraceConfig::default(),
            sla_us: 10_000.0,
            mpcache: Some(MpCacheEffect::default()),
            seed: 42,
        }
    }
}

/// Rebuilds a DHE/hybrid mapping's latency profile with MP-Cache applied:
/// per query size, the non-embedding cost is kept and the embedding cost
/// is replaced by cache probes + (miss-rate-scaled) hash + kNN ops.
fn cached_profile(
    platform: &Platform,
    mapping: &Mapping,
    effect: &MpCacheEffect,
) -> Option<LatencyProfile> {
    let w = &mapping.rep.workload;
    if w.rep.dhe_features.is_empty() {
        return None;
    }
    let k = w.rep.dhe_features[0][0] as u64;
    let out_dim = *w.rep.dhe_features[0].last().expect("decoder has layers") as u64;
    let stacks = w.rep.dhe_features.len() as u64;
    let n_centroids = effect.decoder_centroids as u64;
    let miss = 1.0 - effect.encoder_hit_rate;

    let mut latencies = Vec::with_capacity(PROFILE_SIZES.len());
    for &n in PROFILE_SIZES.iter() {
        let full = platform.query_cost(w, n).ok()?;
        let lookups = n * stacks;
        let miss_lookups = ((lookups as f64 * miss).ceil() as u64).max(1);
        // Cache probe + hit fetch: a small SRAM-resident gather.
        let mut emb_us = price(
            platform,
            Op::Gather {
                lookups,
                row_bytes: out_dim * 4,
                table_bytes: 2_000_000,
            },
            true,
        );
        // Misses: encoder hashing.
        emb_us += price(
            platform,
            Op::Hash {
                count: miss_lookups * k,
            },
            false,
        );
        if n_centroids > 0 {
            // Decoder tier: normalized dot products + argmax, then fetch
            // the centroid's precomputed output.
            emb_us += price(
                platform,
                Op::Gemm {
                    m: miss_lookups,
                    n: n_centroids,
                    k,
                    weight_bytes: n_centroids * k * 4,
                },
                true,
            );
            emb_us += price(
                platform,
                Op::Gather {
                    lookups: miss_lookups,
                    row_bytes: out_dim * 4,
                    table_bytes: n_centroids * out_dim * 4,
                },
                true,
            );
        } else {
            // No decoder tier: misses pay the full decoder MLP, which is
            // the dominant part of the raw embedding cost.
            emb_us += full.embedding_us * miss;
        }
        // Table half of hybrid paths still gathers real tables.
        if !w.rep.table_features.is_empty() {
            for &(rows, dim) in &w.rep.table_features {
                emb_us += price(
                    platform,
                    Op::Gather {
                        lookups: n,
                        row_bytes: dim as u64 * 4,
                        table_bytes: rows * dim as u64 * 4,
                    },
                    false,
                );
            }
        }
        let total = full.total_us() - full.embedding_us + emb_us;
        latencies.push(total);
    }
    Some(LatencyProfile::from_points(
        PROFILE_SIZES.to_vec(),
        latencies,
    ))
}

fn price(platform: &Platform, op: Op, sram: bool) -> f64 {
    mprec_hwsim::op_cost(&op, &platform.spec, sram, sram, None).total_us()
}

/// Filters/adjusts the mapping set for a policy and returns the working
/// set plus the scheduler config.
fn working_set(
    mappings: &MappingSet,
    policy: Policy,
    cfg: &ServingConfig,
) -> (MappingSet, SchedulerConfig) {
    let mut out: Vec<Mapping> = Vec::new();
    let mut sched_cfg = SchedulerConfig::default();
    match policy {
        Policy::Static { role, platform_idx } => {
            out.extend(
                mappings
                    .mappings
                    .iter()
                    .filter(|m| m.rep.role == role && m.platform_idx == platform_idx)
                    .cloned(),
            );
            sched_cfg.accuracy_first = false;
        }
        Policy::TableSwitching | Policy::QuerySplit { .. } => {
            out.extend(
                mappings
                    .mappings
                    .iter()
                    .filter(|m| m.rep.role == RepRole::Table)
                    .cloned(),
            );
            sched_cfg.accuracy_first = false;
        }
        Policy::MpRec | Policy::MpRecNoFallback => {
            for m in &mappings.mappings {
                if matches!(policy, Policy::MpRecNoFallback) && m.rep.role == RepRole::Table {
                    continue;
                }
                let mut m = m.clone();
                if let Some(effect) = &cfg.mpcache {
                    if let Some(p) =
                        cached_profile(&mappings.platforms[m.platform_idx], &m, effect)
                    {
                        m.profile = p;
                    }
                }
                out.push(m);
            }
        }
    }
    (
        MappingSet {
            platforms: mappings.platforms.clone(),
            mappings: out,
        },
        sched_cfg,
    )
}

/// Runs the serving simulation for one policy over the configured
/// steady trace.
///
/// Returns an all-zero outcome (0 completed queries) when the policy's
/// required paths don't exist in the mapping set — e.g. a static table
/// deployment on a device the table doesn't fit.
pub fn simulate(mappings: &MappingSet, policy: Policy, cfg: &ServingConfig) -> ServingOutcome {
    let trace = QueryGenerator::new(cfg.trace, cfg.seed).generate();
    simulate_trace(mappings, policy, cfg, &trace)
}

/// [`simulate`] over an explicit, caller-supplied trace — the entry
/// point the scenario-diverse load generators
/// ([`mprec_data::scenario`]) drive: any arrival pattern (diurnal,
/// flash-crowd, hot-key drift) runs through the same discrete-event
/// policy machinery.
pub fn simulate_trace(
    mappings: &MappingSet,
    policy: Policy,
    cfg: &ServingConfig,
    trace: &[mprec_data::query::Query],
) -> ServingOutcome {
    let (set, sched_cfg) = working_set(mappings, policy, cfg);
    let labels: Vec<String> = set
        .mappings
        .iter()
        .map(|m| m.label(&set.platforms))
        .collect();

    let mut usage = PathUsage::default();
    let mut latencies: Vec<f64> = Vec::with_capacity(trace.len());
    let mut samples = 0u64;
    let mut correct = 0.0f64;
    let mut violations = 0u64;
    let mut last_completion = 0.0f64;

    if set.mappings.is_empty() {
        return ServingOutcome::empty(policy.to_string());
    }

    if let Policy::QuerySplit { cpu_fraction } = policy {
        return simulate_split(&set, trace, cfg, cpu_fraction);
    }

    let mut sched = Scheduler::new(set, sched_cfg);
    for q in trace {
        let arrival = q.arrival_us as f64;
        sched.advance_to(arrival);
        let Some(decision) = sched.route(q.size as u64, cfg.sla_us, 0) else {
            continue;
        };
        let done = sched.commit(&decision);
        let latency = done - arrival;
        latencies.push(latency);
        samples += q.size as u64;
        correct += q.size as f64 * decision.accuracy as f64;
        if latency > cfg.sla_us {
            violations += 1;
        }
        usage.record(&labels[decision.mapping_idx], q.size as u64);
        last_completion = last_completion.max(done);
    }

    finalize(
        policy.to_string(),
        latencies,
        samples,
        correct,
        violations,
        last_completion,
        usage,
    )
}

/// Even query splitting across the first two platforms (Fig. 14).
fn simulate_split(
    set: &MappingSet,
    trace: &[mprec_data::query::Query],
    cfg: &ServingConfig,
    cpu_fraction: f64,
) -> ServingOutcome {
    // One table mapping per platform, by platform index.
    let mut per_platform: Vec<Option<&Mapping>> = vec![None; set.platforms.len()];
    for m in &set.mappings {
        per_platform[m.platform_idx].get_or_insert(m);
    }
    let (Some(m0), Some(m1)) = (
        per_platform.first().copied().flatten(),
        per_platform.get(1).copied().flatten(),
    ) else {
        return ServingOutcome::empty(format!("query-split:{cpu_fraction:.2}"));
    };

    let mut free = [0.0f64; 2];
    let mut usage = PathUsage::default();
    let mut latencies = Vec::with_capacity(trace.len());
    let mut samples = 0u64;
    let mut correct = 0.0f64;
    let mut violations = 0u64;
    let mut last_completion = 0.0f64;
    let label0 = m0.label(&set.platforms);
    let label1 = m1.label(&set.platforms);

    for q in trace {
        let arrival = q.arrival_us as f64;
        let n0 = ((q.size as f64 * cpu_fraction).round() as u64).min(q.size as u64);
        let n1 = q.size as u64 - n0;
        let mut done = arrival;
        if n0 > 0 {
            let start = free[0].max(arrival);
            free[0] = start + m0.profile.latency_us(n0);
            done = done.max(free[0]);
            usage.record(&label0, n0);
        }
        if n1 > 0 {
            let start = free[1].max(arrival);
            free[1] = start + m1.profile.latency_us(n1);
            done = done.max(free[1]);
            usage.record(&label1, n1);
        }
        let latency = done - arrival;
        latencies.push(latency);
        samples += q.size as u64;
        correct += n0 as f64 * m0.rep.accuracy as f64 + n1 as f64 * m1.rep.accuracy as f64;
        if latency > cfg.sla_us {
            violations += 1;
        }
        last_completion = last_completion.max(done);
    }

    finalize(
        format!("query-split:{cpu_fraction:.2}"),
        latencies,
        samples,
        correct,
        violations,
        last_completion,
        usage,
    )
}

fn finalize(
    policy: String,
    latencies: Vec<f64>,
    samples: u64,
    correct_samples: f64,
    sla_violations: u64,
    last_completion_us: f64,
    usage: PathUsage,
) -> ServingOutcome {
    ServingOutcome::from_latency_samples(
        policy,
        latencies,
        samples,
        correct_samples,
        sla_violations,
        last_completion_us / 1e6,
        usage,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mprec_core::candidates::{default_accuracy_book, paper_candidates};
    use mprec_core::planner::plan;
    use mprec_data::DatasetSpec;

    fn hw1_mappings() -> MappingSet {
        let spec = DatasetSpec::kaggle_sim(100);
        let candidates = paper_candidates(&spec, &default_accuracy_book(&spec));
        plan(
            &candidates,
            &[
                Platform::cpu().with_dram_cap(32_000_000_000),
                Platform::gpu(),
            ],
        )
        .unwrap()
    }

    fn quick_cfg() -> ServingConfig {
        ServingConfig {
            trace: QueryTraceConfig {
                num_queries: 500,
                ..QueryTraceConfig::default()
            },
            ..ServingConfig::default()
        }
    }

    #[test]
    fn all_policies_complete_the_trace() {
        let maps = hw1_mappings();
        let cfg = quick_cfg();
        for policy in [
            Policy::Static {
                role: RepRole::Table,
                platform_idx: 0,
            },
            Policy::TableSwitching,
            Policy::QuerySplit { cpu_fraction: 0.5 },
            Policy::MpRec,
        ] {
            let o = simulate(&maps, policy, &cfg);
            assert_eq!(o.completed, 500, "policy {policy}");
            assert!(o.span_s > 0.0);
        }
    }

    #[test]
    fn mp_rec_beats_static_table_cpu_on_correct_throughput() {
        // Fig. 10's headline: MP-Rec > TBL(CPU).
        let maps = hw1_mappings();
        let cfg = quick_cfg();
        let base = simulate(
            &maps,
            Policy::Static {
                role: RepRole::Table,
                platform_idx: 0,
            },
            &cfg,
        );
        let mp = simulate(&maps, Policy::MpRec, &cfg);
        assert!(
            mp.correct_sps() > base.correct_sps(),
            "mp-rec {} !> table-cpu {}",
            mp.correct_sps(),
            base.correct_sps()
        );
    }

    #[test]
    fn mp_rec_effective_accuracy_exceeds_table() {
        let maps = hw1_mappings();
        let o = simulate(&maps, Policy::MpRec, &quick_cfg());
        assert!(o.effective_accuracy() > 0.7879 - 1e-6);
    }

    #[test]
    fn static_dhe_gpu_is_slower_than_mp_rec() {
        // Fig. 10: statically deploying DHE degrades throughput.
        let maps = hw1_mappings();
        let cfg = ServingConfig {
            mpcache: None,
            ..quick_cfg()
        };
        let dhe = simulate(
            &maps,
            Policy::Static {
                role: RepRole::Dhe,
                platform_idx: 1,
            },
            &cfg,
        );
        let mp = simulate(&maps, Policy::MpRec, &cfg);
        assert!(mp.correct_sps() > dhe.correct_sps());
    }

    #[test]
    fn missing_static_path_reports_zero() {
        let maps = hw1_mappings();
        // Platform index 7 doesn't exist.
        let o = simulate(
            &maps,
            Policy::Static {
                role: RepRole::Table,
                platform_idx: 7,
            },
            &quick_cfg(),
        );
        assert_eq!(o.completed, 0);
    }

    #[test]
    fn tighter_sla_increases_violations() {
        let maps = hw1_mappings();
        let mut cfg = quick_cfg();
        cfg.sla_us = 10_000.0;
        let loose = simulate(&maps, Policy::MpRec, &cfg);
        cfg.sla_us = 500.0;
        let tight = simulate(&maps, Policy::MpRec, &cfg);
        assert!(tight.sla_violation_rate() >= loose.sla_violation_rate());
    }

    #[test]
    fn mpcache_improves_mp_rec_under_saturation() {
        // Insight 4: MP-Cache makes accurate paths viable more often. The
        // effect shows when the system is load-saturated, so drive it at
        // 4x the paper's default QPS.
        let maps = hw1_mappings();
        let saturating = |mpcache| ServingConfig {
            trace: QueryTraceConfig {
                num_queries: 800,
                qps: 4000.0,
                ..QueryTraceConfig::default()
            },
            mpcache,
            ..ServingConfig::default()
        };
        let with = simulate(&maps, Policy::MpRec, &saturating(Some(MpCacheEffect::default())));
        let without = simulate(&maps, Policy::MpRec, &saturating(None));
        assert!(
            with.correct_sps() > without.correct_sps(),
            "with {} <= without {}",
            with.correct_sps(),
            without.correct_sps()
        );
    }

    #[test]
    fn usage_breakdown_covers_all_queries() {
        let maps = hw1_mappings();
        let o = simulate(&maps, Policy::MpRec, &quick_cfg());
        let total: u64 = o.usage.queries.values().sum();
        assert_eq!(total, o.completed);
    }
}
