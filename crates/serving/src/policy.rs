//! Serving policies: the deployment choices Fig. 10/14 compares.

use mprec_core::candidates::RepRole;

/// How queries are assigned to representation-hardware paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Every query runs one fixed (representation, platform) pair —
    /// e.g. "TBL (CPU)" or "DHE (GPU)" in Fig. 10.
    Static {
        /// Representation role to pin.
        role: RepRole,
        /// Platform index to pin.
        platform_idx: usize,
    },
    /// Table representation only, but free choice of platform per query
    /// (the "TBL (CPU-GPU)" switching baseline of Fig. 10/15).
    TableSwitching,
    /// Table representation with every query split across *all* platforms
    /// in a fixed ratio (Fig. 14; `cpu_fraction` goes to platform 0, the
    /// remainder to platform 1).
    QuerySplit {
        /// Fraction of each query executed on platform 0.
        cpu_fraction: f64,
    },
    /// Full MP-Rec: Algorithm 2 with all planned paths (and MP-Cache
    /// adjusted profiles when enabled in the serving config).
    MpRec,
    /// MP-Rec restricted to compute paths (ablation: no table fallback).
    MpRecNoFallback,
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Policy::Static { role, platform_idx } => {
                write!(f, "static:{role}@p{platform_idx}")
            }
            Policy::TableSwitching => write!(f, "tbl-switching"),
            Policy::QuerySplit { cpu_fraction } => {
                write!(f, "query-split:{cpu_fraction:.2}")
            }
            Policy::MpRec => write!(f, "mp-rec"),
            Policy::MpRecNoFallback => write!(f, "mp-rec-no-fallback"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let p = Policy::Static {
            role: RepRole::Table,
            platform_idx: 0,
        };
        assert_eq!(p.to_string(), "static:table@p0");
        assert_eq!(Policy::MpRec.to_string(), "mp-rec");
        assert_eq!(
            Policy::QuerySplit { cpu_fraction: 0.5 }.to_string(),
            "query-split:0.50"
        );
    }
}
