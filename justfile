# Developer entry points mirroring the tier-1 verify and CI.
# Install `just` (https://github.com/casey/just) or read the recipes as
# plain shell — each one is a single cargo invocation.

# Build + test exactly as the tier-1 verify does.
default: build test

# Release build of the whole workspace (facade, all crates, bench binaries).
build:
    cargo build --release

# Full test suite: unit tests, crate integration tests (including
# crates/core/tests/invariants.rs), the root integration tests, and doctests.
test:
    cargo test -q

# Criterion micro-benchmarks for the hot kernels (crates/bench/benches/micro.rs).
bench:
    cargo bench -p mprec-bench

# Lint gate used by CI: clippy over every target with warnings denied.
lint:
    cargo clippy --workspace --all-targets -- -D warnings

# Rustdoc gate used by CI: zero warnings, with missing_docs enforced on
# mprec-core and mprec-runtime (crate-level #![warn(missing_docs)]).
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Regenerate one paper figure/table, e.g. `just fig fig16_mpcache`.
fig name:
    cargo run --release -p mprec-bench --bin {{name}}

# Quick release-mode smoke of the multi-threaded serving runtime
# (3K queries, 4 workers); writes BENCH_runtime.json. Mirrors the CI step.
runtime-smoke:
    timeout 300 cargo run --release -p mprec-bench --bin runtime_throughput -- --smoke

# Full runtime throughput sweep (workers x QPS); writes BENCH_runtime.json.
runtime-bench:
    cargo run --release -p mprec-bench --bin runtime_throughput

# Kernel throughput sweep: naive vs tiled GEMM GFLOP/s, gather GB/s, DHE
# encode rate, end-to-end before/after; writes BENCH_kernels.json.
bench-kernels:
    cargo run --release -p mprec-bench --bin kernel_throughput

# Quick kernel smoke (equivalence + tiny shapes). Mirrors the CI step.
kernel-smoke:
    timeout 300 cargo run --release -p mprec-bench --bin kernel_throughput -- --smoke

# Cluster scale-out sweep: scenarios x {1,2,4,8} nodes, per-node cache
# hit rates, critical-path scaling, and the failure/recovery churn
# sweep (per-epoch hit rates + warm-start disk hits); writes
# BENCH_cluster.json.
bench-cluster:
    cargo run --release -p mprec-bench --bin cluster_throughput

# Quick cluster smoke (2 nodes, steady trace, completion asserted) plus
# the elastic path: 1 failure + 1 join mid-trace. Mirrors the CI step.
cluster-smoke:
    timeout 300 cargo run --release -p mprec-bench --bin cluster_throughput -- --smoke --churn

# Live-migration smoke: the smoke cell plus the rebalance pair — the
# same hot-key-drift churn trace under the stop-the-world barrier swap
# vs streaming chunked handoff (dual-ownership flips + cold-tier
# penalty drain + adaptive planner). Asserts zero dropped queries and
# a strict virtual SLA-violation-rate reduction for streaming. Mirrors
# the CI step.
migrate-smoke:
    timeout 300 cargo run --release -p mprec-bench --bin cluster_throughput -- --smoke --migrate

# Chaos-plane smoke: the smoke cell plus the fault-storm pair
# (hardening on vs off under the same FaultPlan::storm). Asserts the
# strict virtual SLA-violation-rate reduction from hedging + brownout
# and zero dropped events from the 1-in-8 sampled recorder. Mirrors
# the CI step.
chaos-smoke:
    timeout 300 cargo run --release -p mprec-bench --bin cluster_throughput -- --smoke --chaos

# Multi-tenant smoke: the light + overload open-loop tenant pair
# (strict 2ms interactive vs loose 20ms batch) on both the single-node
# engine and the 3-node cluster. Asserts the SLA-class separation
# contract in-process: per-tenant rows partition the trace, the strict
# class is never class-shed, the loose class sheds first under
# backlog. Mirrors the CI step.
tenant-smoke:
    timeout 300 cargo run --release -p mprec-bench --bin runtime_throughput -- --smoke --tenants
    timeout 300 cargo run --release -p mprec-bench --bin cluster_throughput -- --smoke --tenants

# Cache-policy ablation: the paper's static top-K cache vs online
# FIFO / LRU / segmented-LRU at equal byte budgets (shared round-down
# budget rule) on one power-law trace.
bench-cache-policy:
    cargo run --release -p mprec-bench --bin ablation_cache_policy

# Persistence smoke: the crash-restart suite for the MP-Cache disk tier
# (snapshot/restore round trip, torn-tmp recovery, truncated-tail
# tolerance). Tests create unique dirs under $TMPDIR and remove them on
# exit. Mirrors the CI step.
persist-smoke:
    cargo test -q -p mprec-core --test persist

# Flight-recorder export: node-churn cluster with tracing on ->
# TRACE_cluster.json (chrome://tracing / ui.perfetto.dev) plus a text
# "explain" of one query's routing chain. `just trace-viz` for the full
# trace, `--explain <id>` via `just fig trace_viz`.
trace-viz:
    cargo run --release -p mprec-bench --bin trace_viz

# Quick trace smoke: 1500-query churn cell with tracing enabled,
# exported Chrome JSON validated (valid JSON, per-track monotonic
# virtual timestamps, nonzero route decisions). Mirrors the CI step.
trace-smoke:
    timeout 300 cargo run --release -p mprec-bench --bin trace_viz -- --smoke
