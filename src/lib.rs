//! # MP-Rec: Multi-Path Recommendation (ASPLOS 2023) — Rust reproduction
//!
//! A from-scratch reproduction of *"MP-Rec: Hardware-Software Co-Design to
//! Enable Multi-Path Recommendation"* (Hsia et al., ASPLOS 2023): dynamic
//! selection of embedding **representations** (table / DHE / select /
//! hybrid) and **hardware platforms** (CPU / GPU / TPU / IPU) to maximize
//! the throughput of correct recommendations under tail-latency targets.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tensor`] | `mprec-tensor` | matrices, GEMM, vector kernels |
//! | [`nn`] | `mprec-nn` | MLPs, losses, optimizers |
//! | [`data`] | `mprec-data` | synthetic Criteo-shaped datasets, query traces |
//! | [`embed`] | `mprec-embed` | Table / DHE / Select / Hybrid representations |
//! | [`dlrm`] | `mprec-dlrm` | the DLRM model and trainer |
//! | [`hwsim`] | `mprec-hwsim` | the Table-1 hardware performance model |
//! | [`core`] | `mprec-core` | MP-Rec: offline planner, online scheduler, MP-Cache |
//! | [`serving`] | `mprec-serving` | the query-serving simulator and policies |
//! | [`runtime`] | `mprec-runtime` | the real multi-threaded serving runtime (worker pool, sharded MP-Cache, SLA-aware batching) |
//! | [`trace`] | `mprec-trace` | virtual-time flight recorder, metrics registry, Chrome-trace export, routing explain |
//! | [`scaling`] | `mprec-scaling` | the §6.9 multi-node scaling analysis |
//!
//! # Quickstart
//!
//! Plan representation-hardware mappings for a CPU-GPU node and serve a
//! query trace with MP-Rec:
//!
//! ```
//! use mprec::core::candidates::{default_accuracy_book, paper_candidates};
//! use mprec::core::planner::plan;
//! use mprec::data::query::QueryTraceConfig;
//! use mprec::data::DatasetSpec;
//! use mprec::hwsim::Platform;
//! use mprec::serving::{simulate, Policy, ServingConfig};
//!
//! let spec = DatasetSpec::kaggle_sim(100);
//! let candidates = paper_candidates(&spec, &default_accuracy_book(&spec));
//! let mappings = plan(&candidates, &[Platform::cpu(), Platform::gpu()])?;
//! let cfg = ServingConfig {
//!     trace: QueryTraceConfig { num_queries: 100, ..QueryTraceConfig::default() },
//!     ..ServingConfig::default()
//! };
//! let outcome = simulate(&mappings, Policy::MpRec, &cfg);
//! println!("correct predictions/s: {:.0}", outcome.correct_sps());
//! # Ok::<(), mprec::core::CoreError>(())
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/` for the binaries regenerating every table and
//! figure of the paper.

pub use mprec_core as core;
pub use mprec_data as data;
pub use mprec_dlrm as dlrm;
pub use mprec_embed as embed;
pub use mprec_hwsim as hwsim;
pub use mprec_nn as nn;
pub use mprec_runtime as runtime;
pub use mprec_scaling as scaling;
pub use mprec_serving as serving;
pub use mprec_tensor as tensor;
pub use mprec_trace as trace;
