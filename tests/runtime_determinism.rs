//! Cross-thread determinism of the serving runtime: with the same seed
//! and trace, the aggregate `ServingOutcome` counts must be identical
//! regardless of worker count — no query may be lost or double-counted
//! under contention, and virtual-time SLA accounting must not depend on
//! wall-clock scheduling.

use mprec::data::query::QueryTraceConfig;
use mprec::runtime::{serve, RoutePolicy, RuntimeConfig, RuntimeModelConfig, RuntimeReport};

fn base_cfg() -> RuntimeConfig {
    RuntimeConfig {
        cache_shards: 8,
        trace: QueryTraceConfig {
            num_queries: 800,
            mean_size: 6.0,
            sigma: 1.0,
            max_size: 24,
            qps: 4000.0,
            poisson_arrivals: true,
        },
        model: RuntimeModelConfig {
            sparse_features: 2,
            rows_per_feature: 1_000,
            emb_dim: 4,
            dhe_k: 8,
            dhe_dnn: 8,
            dhe_h: 1,
            top_hidden: vec![8],
            encoder_cache_bytes: 2_048,
            decoder_centroids: 8,
            dynamic_cache_entries: 128,
            profile_accesses: 4_000,
            ..RuntimeModelConfig::default()
        },
        max_batch_samples: 48,
        seed: 7,
        // Slow virtual compute + a tight SLA so virtual-time violations
        // actually occur and the cross-worker equality is non-trivial.
        virtual_gflops: 0.005,
        sla_us: 2_000.0,
        ..RuntimeConfig::default()
    }
}

fn run_with_workers(workers: usize) -> RuntimeReport {
    serve(RuntimeConfig {
        workers,
        ..base_cfg()
    })
    .expect("runtime serves")
}

#[test]
fn outcome_counts_are_identical_across_worker_counts() {
    let reference = run_with_workers(1);
    assert_eq!(
        reference.outcome.completed, 800,
        "every query completes exactly once"
    );
    assert!(
        reference.virtual_sla_violations > 0,
        "test must exercise a non-trivial violation count (got 0; tighten the SLA)"
    );
    for workers in [2usize, 4] {
        let run = run_with_workers(workers);
        assert_eq!(
            run.outcome.completed, reference.outcome.completed,
            "{workers} workers: completed"
        );
        assert_eq!(
            run.outcome.samples, reference.outcome.samples,
            "{workers} workers: samples"
        );
        assert_eq!(
            run.outcome.sla_violations, reference.outcome.sla_violations,
            "{workers} workers: virtual SLA violations"
        );
        assert_eq!(
            run.outcome.usage, reference.outcome.usage,
            "{workers} workers: per-path usage"
        );
        assert_eq!(
            run.outcome.correct_samples, reference.outcome.correct_samples,
            "{workers} workers: correct samples (bit-exact: dispatcher-side sum)"
        );
        assert_eq!(
            run.routed_queries, run.outcome.completed,
            "{workers} workers: routed == completed (nothing lost in the queue)"
        );
        assert_eq!(
            run.histogram.count(),
            run.outcome.completed,
            "{workers} workers: one measured latency per query"
        );
    }
}

#[test]
fn repeated_runs_with_same_seed_agree() {
    let a = run_with_workers(2);
    let b = run_with_workers(2);
    assert_eq!(a.outcome.completed, b.outcome.completed);
    assert_eq!(a.outcome.samples, b.outcome.samples);
    assert_eq!(a.outcome.sla_violations, b.outcome.sla_violations);
    assert_eq!(a.outcome.usage, b.outcome.usage);
    // The model math itself is deterministic per query, so the end-to-end
    // output checksum matches up to floating-point merge order.
    assert!(
        (a.checksum - b.checksum).abs() <= 1e-6 * a.checksum.abs().max(1.0),
        "checksums diverged: {} vs {}",
        a.checksum,
        b.checksum
    );
}

#[test]
fn fixed_path_runs_are_deterministic_too() {
    let mk = |workers| {
        serve(RuntimeConfig {
            workers,
            route: RoutePolicy::Fixed(mprec::runtime::PathKind::Dhe),
            ..base_cfg()
        })
        .expect("runtime serves")
    };
    let a = mk(1);
    let b = mk(4);
    assert_eq!(a.outcome.completed, b.outcome.completed);
    assert_eq!(a.outcome.sla_violations, b.outcome.sla_violations);
    assert_eq!(a.outcome.usage, b.outcome.usage);
}
