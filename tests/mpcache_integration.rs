//! MP-Cache integration: the functional cache must agree with the full
//! DHE stack on hits, approximate sensibly via centroids on misses, and
//! show the power-law hit rates the serving model assumes.

use std::collections::HashMap;

use mprec::core::mpcache::{DecoderCache, EncoderCache, LruEncoderCache, MpCache};
use mprec::data::zipf::Zipf;
use mprec::data::{DatasetSpec, SyntheticDataset};
use mprec::embed::{DheConfig, DheStack};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn stack(feature: usize) -> DheStack {
    let mut rng = StdRng::seed_from_u64(42);
    DheStack::new(
        DheConfig {
            k: 16,
            dnn: 24,
            h: 2,
            out_dim: 8,
        },
        feature,
        &mut rng,
    )
    .expect("stack")
}

#[test]
fn zipf_trace_gives_useful_hit_rates() {
    // Build per-feature access counts from the real synthetic trace and
    // check a modest cache captures a disproportionate share of accesses.
    let spec = DatasetSpec::kaggle_sim(100);
    let mut ds = SyntheticDataset::new(spec.clone(), 5);
    let profile = ds.sample_batch(8_000);
    let mut counts: Vec<HashMap<u64, u64>> = vec![HashMap::new(); 26];
    for (f, col) in profile.sparse.iter().enumerate() {
        for &id in col {
            *counts[f].entry(id).or_insert(0) += 1;
        }
    }
    let stacks: Vec<DheStack> = (0..26).map(stack).collect();
    let cache = EncoderCache::build(&counts, 8, 64_000, |f, id| {
        Ok(stacks[f].infer(&[id]).expect("infer").row(0).to_vec())
    })
    .expect("build");
    let mp = MpCache::new(Some(cache), None);

    let eval = ds.sample_batch(4_000);
    for (f, col) in eval.sparse.iter().enumerate() {
        for &id in col {
            let _ = mp.embed(&stacks[f], f, id).expect("embed");
        }
    }
    let hit = mp.stats().encoder_hit_rate();
    // 64 KB over 26 zipf(0.9) features: a small cache already captures a
    // large fraction of accesses — that's the entire premise of Fig. 16.
    assert!(hit > 0.2, "hit rate {hit} too low for a power-law trace");
    // And the cached entries fit the budget.
    assert!(mp.encoder.as_ref().unwrap().used_bytes() <= 64_000);
}

#[test]
fn cache_hits_are_bit_exact_and_misses_match_stack() {
    let s = stack(0);
    let mut counts: Vec<HashMap<u64, u64>> = vec![HashMap::new()];
    counts[0].insert(1, 100);
    counts[0].insert(2, 50);
    let cache = EncoderCache::build(&counts, 8, 10_000, |_, id| {
        Ok(s.infer(&[id]).expect("infer").row(0).to_vec())
    })
    .expect("build");
    let mp = MpCache::new(Some(cache), None);
    for id in [1u64, 2, 777] {
        let via = mp.embed(&s, 0, id).expect("embed");
        let direct = s.infer(&[id]).expect("infer");
        assert_eq!(via.as_slice(), direct.row(0), "id {id}");
    }
}

#[test]
fn decoder_tier_error_shrinks_with_more_centroids() {
    let s = stack(0);
    let ids: Vec<u64> = (0..2048).collect();
    let codes = s.encoder().encode_batch(&ids);
    let test_ids: Vec<u64> = (5000..5200).collect();
    let test_codes = s.encoder().encode_batch(&test_ids);
    let exact = s.decode(&test_codes).expect("decode");

    let rmse = |n: usize| {
        let dec = DecoderCache::build(&s, &codes, n, 5).expect("build");
        let mut err = 0.0f64;
        for i in 0..test_ids.len() {
            let approx = dec.lookup(test_codes.row(i));
            for (a, b) in approx.iter().zip(exact.row(i)) {
                err += ((a - b) * (a - b)) as f64;
            }
        }
        (err / (test_ids.len() * 8) as f64).sqrt()
    };
    let coarse = rmse(8);
    let fine = rmse(512);
    assert!(
        fine < coarse,
        "more centroids should approximate better: {fine} !< {coarse}"
    );
}

#[test]
fn eviction_under_pressure_stays_within_budget_and_bit_exact() {
    // A cache sized for ~64 entries fed 4K distinct ids must evict
    // constantly, never exceed its entry budget, and still return
    // bit-exact embeddings for whatever it serves.
    let s = stack(0);
    let mut cache = LruEncoderCache::new(8, 64 * (16 + 8 * 4));
    let cap = cache.max_entries();
    assert!(cap >= 32, "budget should admit a meaningful working set");

    for id in 0..4096u64 {
        let via = cache.embed(&s, 0, id).expect("embed");
        let direct = s.infer(&[id]).expect("infer");
        assert_eq!(via.as_slice(), direct.row(0), "id {id}");
        assert!(
            cache.len() <= cap,
            "{} entries exceed the {cap}-entry budget",
            cache.len()
        );
    }
    // A cold uniform sweep over 4K ids through a 64-entry cache is all
    // misses; the hit counter must reflect that.
    assert!(cache.hit_rate() < 0.05, "hit rate {}", cache.hit_rate());

    // After the pressure phase the cache still works: a small hot set
    // re-accessed repeatedly becomes all hits once resident.
    for _ in 0..10 {
        for id in 0..16u64 {
            let _ = cache.embed(&s, 0, id).expect("embed");
        }
    }
    let hot = cache.embed(&s, 0, 3).expect("embed");
    assert_eq!(hot.as_slice(), s.infer(&[3]).expect("infer").row(0));
    assert!(
        cache.hit_rate() > 0.03,
        "re-accessed hot set should lift hit rate, got {}",
        cache.hit_rate()
    );
}

#[test]
fn hit_rate_is_monotone_in_zipf_skew() {
    // Fig. 16's premise: the more skewed the access distribution, the more
    // traffic a fixed-size cache captures. Sweep the Zipf exponent and
    // require the measured hit rate to rise with it.
    let s = stack(0);
    let support = 50_000u64;
    let draws = 30_000usize;
    let mut rates = Vec::new();
    for (i, alpha) in [0.5f64, 0.8, 1.1, 1.4].into_iter().enumerate() {
        let z = Zipf::new(support, alpha);
        let mut rng = StdRng::seed_from_u64(1000 + i as u64);
        let mut cache = LruEncoderCache::new(8, 256 * (16 + 8 * 4));
        for _ in 0..draws {
            let id = z.sample(&mut rng);
            let _ = cache.embed(&s, 0, id).expect("embed");
        }
        rates.push((alpha, cache.hit_rate()));
    }
    for pair in rates.windows(2) {
        let ((a0, r0), (a1, r1)) = (pair[0], pair[1]);
        assert!(
            r1 > r0,
            "hit rate should grow with skew: alpha {a0} -> {r0:.3}, alpha {a1} -> {r1:.3}"
        );
    }
    // Endpoints sanity: near-uniform traffic over 50K ids barely hits a
    // 256-entry cache; alpha=1.4 concentrates most mass on the head.
    assert!(rates[0].1 < 0.2, "alpha 0.5 rate {:.3}", rates[0].1);
    assert!(rates[3].1 > 0.5, "alpha 1.4 rate {:.3}", rates[3].1);
}

#[test]
fn full_hierarchy_prefers_encoder_then_decoder() {
    let s = stack(0);
    let mut counts: Vec<HashMap<u64, u64>> = vec![HashMap::new()];
    counts[0].insert(7, 1000);
    let enc = EncoderCache::build(&counts, 8, 1_000, |_, id| {
        Ok(s.infer(&[id]).expect("infer").row(0).to_vec())
    })
    .expect("enc");
    let ids: Vec<u64> = (0..512).collect();
    let codes = s.encoder().encode_batch(&ids);
    let dec = DecoderCache::build(&s, &codes, 64, 4).expect("dec");
    let mp = MpCache::new(Some(enc), Some(dec));

    let _ = mp.embed(&s, 0, 7).expect("hot id");
    let _ = mp.embed(&s, 0, 99_999).expect("cold id");
    let stats = mp.stats();
    assert_eq!(stats.encoder_hits, 1);
    assert_eq!(stats.encoder_misses, 1);
    assert_eq!(stats.decoder_lookups, 1);
}
