//! Differential sim-vs-runtime harness: the discrete-event replay
//! simulator (`mprec-serving::replay`) and the real multi-threaded
//! runtime (`mprec-runtime`) implement the *same serving contract*
//! (micro-batching, Algorithm-2 routing, virtual-time SLA accounting)
//! independently. On identical traces and configs they must agree
//! exactly on:
//!
//! * outcome counts — completed queries, samples, virtual SLA
//!   violations, per-path usage, correct samples (bit-equal: both sides
//!   accumulate in dispatch order);
//! * the per-batch path-selection decision trail;
//! * MP-Cache hit/miss/eviction counters, predicted by replaying the
//!   simulator's batch trail against a twin cache with the runtime's
//!   own deterministic ID draws.
//!
//! Any drift between the simulated and executed serving stacks fails
//! here before it can skew a paper figure.

use mprec::data::query::QueryTraceConfig;
use mprec::data::scenario::{self, ChurnAction, LoadScenario};
use mprec::data::traffic::{SlaClass, TenantSpec, TrafficConfig};
use mprec::runtime::{
    serve, Cluster, ClusterConfig, ClusterReport, PathKind, RebalanceConfig, RuntimeConfig,
    RuntimeModel, RuntimeModelConfig, RuntimeReport, TenantReport,
};
use mprec::serving::replay::{
    replay, replay_cluster, replay_cluster_traced, replay_traced, ClusterReplayResult,
    ReplayConfig, ReplayResult, TenantOutcome,
};
use mprec::trace::{EventKind, TraceConfig, TraceRecording};

fn model_cfg(dynamic_entries: usize) -> RuntimeModelConfig {
    RuntimeModelConfig {
        sparse_features: 3,
        rows_per_feature: 800,
        emb_dim: 4,
        dhe_k: 8,
        dhe_dnn: 8,
        dhe_h: 1,
        top_hidden: vec![8],
        encoder_cache_bytes: 2_048,
        decoder_centroids: 8,
        dynamic_cache_entries: dynamic_entries,
        profile_accesses: 3_000,
        ..RuntimeModelConfig::default()
    }
}

fn runtime_cfg(workers: usize, dynamic_entries: usize) -> RuntimeConfig {
    RuntimeConfig {
        workers,
        cache_shards: 4,
        trace: QueryTraceConfig {
            num_queries: 600,
            mean_size: 5.0,
            sigma: 1.0,
            max_size: 20,
            qps: 4000.0,
            poisson_arrivals: true,
        },
        model: model_cfg(dynamic_entries),
        max_batch_samples: 40,
        seed: 17,
        // Slow virtual compute + a tight SLA so routing actually
        // switches paths (hybrid early, table under backlog) and
        // violations occur — the agreement is then non-trivial.
        virtual_gflops: 0.01,
        sla_us: 2_500.0,
        ..RuntimeConfig::default()
    }
}

/// Runs the runtime engine and the replay simulator on one config and
/// returns both results plus the path list of the shared mapping set.
fn run_both(cfg: RuntimeConfig) -> (RuntimeReport, ReplayResult, Vec<PathKind>) {
    let engine = mprec::runtime::Engine::new(cfg.clone()).expect("engine builds");
    let report = engine.serve().expect("runtime serves");
    let trace = scenario::generate(cfg.trace, cfg.scenario, cfg.seed);
    let sim = replay(
        engine.mapping_set(),
        &trace,
        &ReplayConfig {
            sla_us: cfg.sla_us,
            max_batch_samples: cfg.max_batch_samples,
            max_batch_wait_us: cfg.max_batch_wait_us,
            classes: Vec::new(),
        },
    );
    (report, sim, engine.paths().to_vec())
}

/// Asserts the deterministic (virtual-time) agreement contract.
fn assert_agreement(report: &RuntimeReport, sim: &ReplayResult, paths: &[PathKind]) {
    assert_eq!(report.outcome.completed, sim.outcome.completed, "completed");
    assert_eq!(report.outcome.samples, sim.outcome.samples, "samples");
    assert_eq!(
        report.virtual_sla_violations, sim.outcome.sla_violations,
        "virtual SLA violations"
    );
    assert_eq!(report.outcome.usage, sim.outcome.usage, "per-path usage");
    assert_eq!(
        report.outcome.correct_samples, sim.outcome.correct_samples,
        "correct samples accumulate identically"
    );
    let sim_decisions: Vec<PathKind> =
        sim.decisions().iter().map(|&idx| paths[idx]).collect();
    assert_eq!(
        report.path_decisions, sim_decisions,
        "per-batch path-selection trail"
    );
}

/// Predicts the runtime's cache counters by replaying the simulator's
/// batch trail (path + query specs, in dispatch order) against a twin
/// model's cache with the same deterministic ID draws.
fn twin_cache_stats(
    cfg: &RuntimeConfig,
    sim: &ReplayResult,
    paths: &[PathKind],
) -> mprec::core::CacheStats {
    let twin =
        RuntimeModel::build(&cfg.model, cfg.cache_shards, cfg.seed).expect("twin builds");
    let mut scratch = twin.make_scratch();
    for batch in &sim.batches {
        twin.replay_cache_accesses(paths[batch.mapping_idx], &batch.queries, &mut scratch)
            .expect("twin replay");
    }
    twin.cache().stats()
}

#[test]
fn single_worker_runtime_agrees_with_replay_including_dynamic_cache() {
    // One worker executes batches in dispatch order, so even the
    // order-sensitive dynamic tier must match the sequential replay.
    let cfg = runtime_cfg(1, 256);
    let (report, sim, paths) = run_both(cfg.clone());
    assert_eq!(report.outcome.completed, 600);
    assert!(
        report.virtual_sla_violations > 0,
        "config must exercise violations (got none; tighten the SLA)"
    );
    assert!(
        report
            .path_decisions
            .iter()
            .any(|&p| p != report.path_decisions[0]),
        "config must exercise path switching"
    );
    assert_agreement(&report, &sim, &paths);
    assert_eq!(
        report.cache,
        twin_cache_stats(&cfg, &sim, &paths),
        "cache hit/miss/eviction counters"
    );
}

#[test]
fn multi_worker_runtime_agrees_with_replay_on_static_cache_counts() {
    // With the dynamic tier disabled the cache counters are a pure
    // per-key function, so they are worker-interleaving-invariant and
    // must still match the sequential twin exactly.
    let cfg = runtime_cfg(3, 0);
    let (report, sim, paths) = run_both(cfg.clone());
    assert_agreement(&report, &sim, &paths);
    assert_eq!(
        report.cache,
        twin_cache_stats(&cfg, &sim, &paths),
        "static-tier counters are interleaving-invariant"
    );
}

#[test]
fn agreement_holds_across_load_scenarios() {
    for scenario_label in ["diurnal", "flash", "hotkey"] {
        let cfg = RuntimeConfig {
            scenario: LoadScenario::default_of(scenario_label).expect("known scenario"),
            ..runtime_cfg(2, 0)
        };
        let (report, sim, paths) = run_both(cfg.clone());
        assert_eq!(
            report.outcome.completed, 600,
            "{scenario_label}: all queries complete"
        );
        assert_agreement(&report, &sim, &paths);
        assert_eq!(
            report.cache,
            twin_cache_stats(&cfg, &sim, &paths),
            "{scenario_label}: cache counters"
        );
    }
}

fn cluster_cfg(nodes: usize, workers_per_node: usize, dynamic_entries: usize) -> ClusterConfig {
    ClusterConfig {
        nodes,
        workers_per_node,
        cache_shards: 4,
        trace: QueryTraceConfig {
            num_queries: 500,
            mean_size: 5.0,
            sigma: 1.0,
            max_size: 20,
            qps: 4000.0,
            poisson_arrivals: true,
        },
        model: model_cfg(dynamic_entries),
        max_batch_samples: 40,
        seed: 23,
        // Slow virtual compute + a tight SLA: per-node backlogs build up
        // and Algorithm 2 actually switches paths.
        virtual_gflops: 0.005,
        sla_us: 2_500.0,
        ..ClusterConfig::default()
    }
}

/// The canonical churn schedule for these tests: the highest node fails
/// at 40% of the nominal span, a fresh node joins at 70%.
fn churned(mut cfg: ClusterConfig) -> ClusterConfig {
    let span = scenario::nominal_span_us(cfg.trace.num_queries, cfg.trace.qps);
    cfg.churn = scenario::node_churn(cfg.nodes, span);
    cfg
}

/// Runs the elastic cluster and its replay twin on one config.
fn run_cluster_both(cfg: ClusterConfig) -> (Cluster, ClusterReport, ClusterReplayResult) {
    let cluster = Cluster::new(cfg.clone()).expect("cluster builds");
    let report = cluster.serve().expect("cluster serves");
    let trace = scenario::generate(cfg.trace, cfg.scenario, cfg.seed);
    let sim = replay_cluster(
        &cluster.replay_spec(),
        &trace,
        &ReplayConfig {
            sla_us: cfg.sla_us,
            max_batch_samples: cfg.max_batch_samples,
            max_batch_wait_us: cfg.max_batch_wait_us,
            classes: Vec::new(),
        },
    );
    (cluster, report, sim)
}

/// Asserts the cluster's deterministic (virtual-time) agreement
/// contract against the replay twin.
fn assert_cluster_agreement(cluster: &Cluster, report: &ClusterReport, sim: &ClusterReplayResult) {
    assert_eq!(report.outcome.completed, sim.outcome.completed, "completed");
    assert_eq!(report.outcome.samples, sim.outcome.samples, "samples");
    assert_eq!(
        report.virtual_sla_violations, sim.outcome.sla_violations,
        "virtual SLA violations"
    );
    assert_eq!(report.outcome.usage, sim.outcome.usage, "per-path usage");
    assert_eq!(
        report.outcome.correct_samples, sim.outcome.correct_samples,
        "correct samples accumulate identically"
    );
    let sim_decisions: Vec<PathKind> = sim
        .batches
        .iter()
        .map(|b| cluster.paths()[b.mapping_idx])
        .collect();
    assert_eq!(
        report.path_decisions, sim_decisions,
        "per-batch path-selection trail"
    );
    assert_eq!(
        report.retried_batches, sim.retried_batches,
        "failure-retry accounting"
    );
    assert_eq!(report.shed_queries, sim.shed_queries, "shed-query accounting");
    assert_eq!(report.leg_timeouts, sim.leg_timeouts, "leg-timeout accounting");
    assert_eq!(report.hedged_legs, sim.hedged_legs, "hedged-leg accounting");
    assert_eq!(report.leg_retries, sim.leg_retries, "leg-retry accounting");
}

/// Predicts the cluster's *merged* cache counters with one
/// whole-feature-space twin: every batch executes each feature exactly
/// once somewhere, and with the dynamic tier disabled the counters are
/// per-key pure functions, so the per-node split is invisible to the
/// merged sum — even across churn.
fn merged_twin_stats(
    cfg: &ClusterConfig,
    cluster: &Cluster,
    sim: &ClusterReplayResult,
) -> mprec::core::CacheStats {
    let twin = RuntimeModel::build(&cfg.model, cfg.cache_shards, cfg.seed).expect("twin");
    let mut scratch = twin.make_scratch();
    for batch in &sim.batches {
        twin.replay_cache_accesses(
            cluster.paths()[batch.mapping_idx],
            &batch.queries,
            &mut scratch,
        )
        .expect("twin replay");
    }
    twin.cache().stats()
}

#[test]
fn cluster_runtime_agrees_with_replay_over_its_critical_path_profiles() {
    // The static (no-churn) cluster: the front-end routes over
    // capacity-aware slowest-shard profiles with per-node backlogs and
    // pruned scatter; the replay twin must reproduce its decision trail
    // and outcome counts exactly, and a single merged twin model must
    // predict the summed per-node cache counters.
    let cfg = cluster_cfg(3, 2, 0);
    let (cluster, report, sim) = run_cluster_both(cfg.clone());
    assert_eq!(report.outcome.completed, 500);
    assert!(
        report
            .path_decisions
            .iter()
            .any(|&p| p != report.path_decisions[0]),
        "config must exercise path switching"
    );
    assert_cluster_agreement(&cluster, &report, &sim);
    assert_eq!(report.cache, merged_twin_stats(&cfg, &cluster, &sim));
}

#[test]
fn elastic_cluster_agrees_with_replay_across_node_churn() {
    // One failure + one join mid-trace: epoch switching, shard
    // rebalancing, in-flight retry accounting, and the merged cache
    // counters must all stay in exact sim/runtime lockstep.
    let cfg = churned(cluster_cfg(3, 2, 0));
    let (cluster, report, sim) = run_cluster_both(cfg.clone());
    assert_eq!(report.outcome.completed, 500, "churn loses no query");
    assert_eq!(cluster.epochs().len(), 3, "boot + fail + join epochs");
    assert!(
        report.retried_batches > 0,
        "schedule must catch a batch in flight (tune the fail time)"
    );
    assert_cluster_agreement(&cluster, &report, &sim);
    assert_eq!(
        report.cache,
        merged_twin_stats(&cfg, &cluster, &sim),
        "merged counters survive churn (static tier is replica-pure)"
    );
}

/// Mirrors `Cluster`'s warm-start hand-off between per-node twins: at
/// each join barrier the runtime ships the joiner its newly owned
/// features' dynamic cache entries (old owners' exports land in the
/// joiner's disk tier) before any post-join batch dispatches. Because
/// `sim.batches` is dispatch order and retries only bump `epoch_idx` at
/// fail events, the first batch with `epoch_idx >= join_epoch` marks
/// that barrier exactly.
fn mirror_warm_start(
    cfg: &ClusterConfig,
    cluster: &Cluster,
    ids: &[u32],
    twins: &[RuntimeModel],
    batch_epoch: usize,
    warm_done: &mut [bool],
) {
    for (j, ev) in cfg.churn.iter().enumerate() {
        let join_epoch = j + 1;
        if ev.action != ChurnAction::Join || warm_done[j] || batch_epoch < join_epoch {
            continue;
        }
        warm_done[j] = true;
        let new_plan = &cluster.epochs()[join_epoch].plan;
        let old_plan = &cluster.epochs()[join_epoch - 1].plan;
        let joiner_slot = ids.iter().position(|i| *i == ev.node).expect("joiner twin");
        let mut by_owner: std::collections::BTreeMap<u32, Vec<usize>> =
            std::collections::BTreeMap::new();
        for &f in new_plan.features_of(ev.node) {
            by_owner.entry(old_plan.node_of(f)).or_default().push(f);
        }
        for (owner, feats) in by_owner {
            let slot = ids.iter().position(|i| *i == owner).expect("owner twin");
            // Disk first, dynamic second — mirroring the runtime's
            // hand-off exactly: the receiver's log is last-write-wins
            // and the dynamic tier holds the live values. Shipping the
            // disk tier too is what keeps a twice-migrated feature's
            // parked records alive.
            let disk = twins[slot]
                .cache()
                .export_disk_segment(|f| feats.contains(&f));
            let dynamic = twins[slot]
                .cache()
                .export_dynamic_segment(|f| feats.contains(&f));
            for seg in [disk, dynamic] {
                twins[joiner_slot]
                    .cache()
                    .load_disk_segment(&seg)
                    .expect("exported segment loads");
            }
        }
    }
}

/// Replays the simulator's dispatch-order batch trail against per-node
/// twin models — mirroring the runtime's join-barrier warm-start — and
/// returns each replica's predicted cache counters (in `node_ids`
/// order, alongside those ids).
fn per_node_twin_stats(
    cfg: &ClusterConfig,
    cluster: &Cluster,
    sim: &ClusterReplayResult,
) -> (Vec<u32>, Vec<mprec::core::CacheStats>) {
    let ids = cluster.node_ids();
    let twins: Vec<RuntimeModel> = ids
        .iter()
        .map(|_| RuntimeModel::build(&cfg.model, cfg.cache_shards, cfg.seed).expect("twin"))
        .collect();
    let mut scratches: Vec<_> = twins.iter().map(|t| t.make_scratch()).collect();
    let mut warm_done = vec![false; cfg.churn.len()];
    for batch in &sim.batches {
        mirror_warm_start(cfg, cluster, &ids, &twins, batch.epoch_idx, &mut warm_done);
        let path = cluster.paths()[batch.mapping_idx];
        let assignment = &cluster.epochs()[batch.epoch_idx].assignments[batch.mapping_idx];
        for (node_id, feats) in assignment {
            let slot = ids.iter().position(|i| i == node_id).expect("replica");
            twins[slot]
                .replay_cache_accesses_features(
                    path,
                    &batch.queries,
                    feats,
                    &mut scratches[slot],
                )
                .expect("per-node twin replay");
        }
    }
    let stats = twins.iter().map(|t| t.cache().stats()).collect();
    (ids, stats)
}

#[test]
fn per_node_caches_match_per_node_twins_across_churn() {
    // The strongest cache pin: with one worker per node each node
    // executes its scatter jobs in dispatch order, so replaying every
    // batch's *final* (post-retry) per-node assignment against per-node
    // twin models predicts each replica's counters exactly — dynamic
    // tier included, across a failure and a join.
    let cfg = churned(cluster_cfg(3, 1, 256));
    let (cluster, report, sim) = run_cluster_both(cfg.clone());
    assert_cluster_agreement(&cluster, &report, &sim);
    let (ids, twin_stats) = per_node_twin_stats(&cfg, &cluster, &sim);
    for (slot, stats) in twin_stats.iter().enumerate() {
        assert_eq!(
            report.per_node_cache[slot], *stats,
            "node {} counters",
            ids[slot]
        );
    }
}

#[test]
fn warm_started_joiner_serves_disk_hits_that_twins_reproduce() {
    // Three-tier contract, non-vacuously: at the default tight SLA the
    // post-join routing picks the table path and the joiner's cache
    // never sees traffic, so slacken the SLA until the hybrid path
    // survives the join. The joiner then serves real lookups from its
    // warm-started disk tier, and the per-node equality below only
    // holds if the twins mirror the warm-start hand-off and the
    // disk-hit accounting exactly.
    let mut cfg = churned(cluster_cfg(3, 1, 256));
    cfg.sla_us = 10_000.0;
    let (cluster, report, sim) = run_cluster_both(cfg.clone());
    assert_cluster_agreement(&cluster, &report, &sim);

    let joiner = cfg
        .churn
        .iter()
        .find(|ev| ev.action == ChurnAction::Join)
        .expect("schedule has a join")
        .node;
    let (ids, twin_stats) = per_node_twin_stats(&cfg, &cluster, &sim);
    let joiner_slot = ids.iter().position(|i| *i == joiner).expect("joiner");
    assert!(
        report.per_node_cache[joiner_slot].disk_hits > 0,
        "joiner must serve from its warm-started disk tier \
         (got {:?}; slacken the SLA)",
        report.per_node_cache[joiner_slot]
    );
    for (slot, stats) in twin_stats.iter().enumerate() {
        assert_eq!(
            report.per_node_cache[slot], *stats,
            "node {} counters (disk tier included)",
            ids[slot]
        );
    }
}

#[test]
fn retried_batches_are_charged_both_latency_legs() {
    // Regression for the histogram fault-model fix: a retried batch's
    // queries must record the *full* virtual latency (failed attempt +
    // retry leg), not just the retry leg. The runtime's virtual
    // histogram sum is pinned to the replay's per-query totals.
    let cfg = churned(cluster_cfg(3, 2, 0));
    let (cluster, report, sim) = run_cluster_both(cfg.clone());
    assert!(report.retried_batches > 0, "needs an in-flight failure");
    let fail_at = cfg.churn[0].at_us;
    let trace = scenario::generate(cfg.trace, cfg.scenario, cfg.seed);
    let arrival_of: std::collections::HashMap<u64, f64> = trace
        .iter()
        .map(|q| (q.id, q.arrival_us as f64))
        .collect();
    let mut full_sum = 0.0f64;
    let mut retry_leg_only_sum = 0.0f64;
    for batch in &sim.batches {
        for &(qid, _) in &batch.queries {
            let arrival = arrival_of[&qid];
            full_sum += batch.done_us - arrival;
            retry_leg_only_sum += if batch.retried {
                // The buggy accounting: as if the query only existed
                // from the failure instant onward.
                batch.done_us - fail_at.max(arrival)
            } else {
                batch.done_us - arrival
            };
        }
    }
    let recorded = report.virtual_histogram.sum_us();
    assert!(
        (recorded - full_sum).abs() <= 1e-6 * full_sum.abs().max(1.0),
        "virtual histogram sum {recorded} != both-legs sum {full_sum}"
    );
    assert!(
        full_sum > retry_leg_only_sum + 1.0,
        "full accounting must exceed the retry-leg-only sum \
         ({full_sum} vs {retry_leg_only_sum})"
    );
    assert_eq!(report.virtual_histogram.count(), 500, "one sample per query");
    let _ = cluster;
}

#[test]
fn runtime_and_replay_stay_in_lockstep_across_worker_counts() {
    // The replay simulator is worker-oblivious; the runtime must agree
    // with it for every worker count (i.e. worker-count invariance of
    // the deterministic contract, stated differentially).
    let reference = {
        let (_, sim, paths) = run_both(runtime_cfg(1, 0));
        (sim, paths)
    };
    for workers in [2usize, 4] {
        let report = serve(runtime_cfg(workers, 0)).expect("runtime serves");
        assert_agreement(&report, &reference.0, &reference.1);
    }
}

#[test]
fn replay_sees_scenario_load_shapes_through_the_shared_trace() {
    // Same mapping set, different scenarios: the flash-crowd burst must
    // raise virtual SLA violations over steady in *both* stacks (sanity
    // that the differential harness isn't vacuously comparing empty
    // behavior).
    let steady_cfg = runtime_cfg(1, 0);
    let flash_cfg = RuntimeConfig {
        scenario: LoadScenario::FlashCrowd {
            start_frac: 0.3,
            duration_frac: 0.3,
            multiplier: 6.0,
        },
        ..steady_cfg.clone()
    };
    let (steady_rt, steady_sim, _) = run_both(steady_cfg);
    let (flash_rt, flash_sim, _) = run_both(flash_cfg);
    assert!(
        flash_rt.virtual_sla_violations > steady_rt.virtual_sla_violations,
        "runtime: flash {} !> steady {}",
        flash_rt.virtual_sla_violations,
        steady_rt.virtual_sla_violations
    );
    assert!(
        flash_sim.outcome.sla_violations > steady_sim.outcome.sla_violations,
        "sim: flash {} !> steady {}",
        flash_sim.outcome.sla_violations,
        steady_sim.outcome.sla_violations
    );
}

// ---------------------------------------------------------------------------
// Flight-recorder twin agreement: the dispatcher track's pinned events
// (Enqueue/BatchFormed/RouteDecision/Scatter/Execute/Retry/Complete)
// must match between runtime and replay exactly — same kinds, same
// virtual timestamps (bit-equal f64), same decision payloads including
// the rejected candidates' scored costs.
// ---------------------------------------------------------------------------

/// Compares the twin-pinned dispatcher event streams element-for-element.
fn assert_trace_twin_agreement(rt: &TraceRecording, sim: &TraceRecording) {
    let rt_track = rt.track("dispatcher").expect("runtime dispatcher track");
    let sim_track = sim.track("dispatcher").expect("replay dispatcher track");
    assert_eq!(rt_track.dropped_events, 0, "runtime dispatcher dropped events");
    assert_eq!(sim_track.dropped_events, 0, "replay dispatcher dropped events");
    let rt_pinned = rt_track.pinned_events();
    let sim_pinned = sim_track.pinned_events();
    assert_eq!(
        rt_pinned.len(),
        sim_pinned.len(),
        "pinned dispatcher event counts (runtime {} vs replay {})",
        rt_pinned.len(),
        sim_pinned.len()
    );
    for (i, (r, s)) in rt_pinned.iter().zip(sim_pinned.iter()).enumerate() {
        assert_eq!(
            r, s,
            "pinned dispatcher event #{i} diverges:\n  runtime: {r:?}\n  replay:  {s:?}"
        );
    }
}

#[test]
fn steady_engine_trace_twins_agree_event_for_event() {
    let cfg = RuntimeConfig {
        recorder: TraceConfig::enabled(),
        ..runtime_cfg(2, 0)
    };
    let engine = mprec::runtime::Engine::new(cfg.clone()).expect("engine builds");
    let report = engine.serve().expect("runtime serves");
    let rt_trace = report.trace.expect("runtime recorded a trace");
    let trace = scenario::generate(cfg.trace, cfg.scenario, cfg.seed);
    let (_, sim_trace) = replay_traced(
        engine.mapping_set(),
        &trace,
        &ReplayConfig {
            sla_us: cfg.sla_us,
            max_batch_samples: cfg.max_batch_samples,
            max_batch_wait_us: cfg.max_batch_wait_us,
            classes: Vec::new(),
        },
        TraceConfig::enabled(),
    );
    let sim_trace = sim_trace.expect("replay recorded a trace");
    assert_trace_twin_agreement(&rt_trace, &sim_trace);

    // Sanity: the agreement is over a non-vacuous lifecycle.
    let dispatcher = rt_trace.track("dispatcher").unwrap();
    let n = cfg.trace.num_queries;
    assert_eq!(dispatcher.events_of(EventKind::Enqueue).count(), n);
    assert_eq!(dispatcher.events_of(EventKind::Complete).count(), n);
    let routes: Vec<_> = dispatcher.events_of(EventKind::RouteDecision).collect();
    assert!(!routes.is_empty(), "route decisions were recorded");
    assert!(
        routes
            .iter()
            .any(|e| e.costs.iter().filter(|c| c.is_finite()).count() > 1),
        "route decisions carry rejected candidates' scored costs"
    );
}

#[test]
fn churned_cluster_trace_twins_agree_event_for_event() {
    let cfg = ClusterConfig {
        recorder: TraceConfig::enabled(),
        ..churned(cluster_cfg(3, 2, 0))
    };
    let cluster = Cluster::new(cfg.clone()).expect("cluster builds");
    let report = cluster.serve().expect("cluster serves");
    let rt_trace = report.trace.expect("cluster recorded a trace");
    let trace = scenario::generate(cfg.trace, cfg.scenario, cfg.seed);
    let (sim, sim_trace) = replay_cluster_traced(
        &cluster.replay_spec(),
        &trace,
        &ReplayConfig {
            sla_us: cfg.sla_us,
            max_batch_samples: cfg.max_batch_samples,
            max_batch_wait_us: cfg.max_batch_wait_us,
            classes: Vec::new(),
        },
        TraceConfig::enabled(),
    );
    let sim_trace = sim_trace.expect("replay recorded a trace");
    assert_trace_twin_agreement(&rt_trace, &sim_trace);

    // Churn must exercise the retry leg in both twins, and the runtime
    // track additionally carries the runtime-only membership events
    // (excluded from the pinned comparison above).
    let rt_disp = rt_trace.track("dispatcher").unwrap();
    let sim_disp = sim_trace.track("dispatcher").unwrap();
    let rt_retries = rt_disp.events_of(EventKind::Retry).count();
    assert!(rt_retries > 0, "churn produced retry legs");
    assert_eq!(
        rt_retries,
        sim_disp.events_of(EventKind::Retry).count(),
        "retry legs agree"
    );
    assert!(sim.retried_batches > 0, "replay charged retried batches");
    assert_eq!(
        rt_disp.events_of(EventKind::EpochBarrier).count(),
        2,
        "fail + join each quiesce an epoch barrier"
    );
    assert_eq!(
        rt_disp.events_of(EventKind::WarmStart).count(),
        1,
        "the joiner warm-started once"
    );
    assert_eq!(
        sim_disp.events_of(EventKind::EpochBarrier).count(),
        0,
        "membership events are runtime-only"
    );
}

#[test]
fn streaming_migration_and_adaptive_replan_twins_agree_event_for_event() {
    // The full elastic path in one trace: the join streams in over
    // chunked dual-ownership flips plus a penalty drain (no barrier
    // swap), and once the static schedule is exhausted the adaptive
    // planner opens at least one overlay epoch under hot-key drift.
    // The replay twin consumes the merged spec — static epochs plus
    // overlays — with no migration-specific logic of its own, and must
    // agree on every virtual-time number and pinned dispatcher event.
    let mut cfg = ClusterConfig {
        recorder: TraceConfig::enabled(),
        scenario: LoadScenario::HotKeyDrift { epochs: 6 },
        ..churned(cluster_cfg(3, 2, 0))
    };
    cfg.rebalance = RebalanceConfig {
        streaming_chunks: 2,
        drain_us: 400.0,
        adaptive: true,
        adaptive_threshold_us: 50.0,
        adaptive_cooldown_us: 4_000.0,
        adaptive_max_moves: 1,
        ..RebalanceConfig::default()
    };
    let cluster = Cluster::new(cfg.clone()).expect("cluster builds");
    let report = cluster.serve().expect("cluster serves");
    let trace = scenario::generate(cfg.trace, cfg.scenario, cfg.seed);
    // replay_spec is read *after* serving so the planner's overlay
    // epochs are part of the shipped contract.
    let (sim, sim_trace) = replay_cluster_traced(
        &cluster.replay_spec(),
        &trace,
        &ReplayConfig {
            sla_us: cfg.sla_us,
            max_batch_samples: cfg.max_batch_samples,
            max_batch_wait_us: cfg.max_batch_wait_us,
            classes: Vec::new(),
        },
        TraceConfig::enabled(),
    );

    assert!(
        cluster.epochs().len() > 3,
        "the join expanded into streaming sub-epochs, got {}",
        cluster.epochs().len()
    );
    assert!(
        report.migration_steps > report.adaptive_replans,
        "at least one chunk flip streamed warm state"
    );
    assert!(
        report.adaptive_replans >= 1,
        "hot-key drift triggered the planner"
    );
    assert_eq!(report.outcome.completed, 500, "no query lost mid-migration");

    assert_cluster_agreement(&cluster, &report, &sim);
    assert_eq!(
        report.cache,
        merged_twin_stats(&cfg, &cluster, &sim),
        "merged counters are plan-invariant across streaming + re-plans"
    );
    let rt_trace = report.trace.as_ref().expect("cluster recorded a trace");
    let sim_trace = sim_trace.expect("replay recorded a trace");
    assert_trace_twin_agreement(rt_trace, &sim_trace);

    // The migration lifecycle itself is runtime-only (like EpochBarrier
    // and WarmStart): window-open plus each re-plan announce a start,
    // every flip and re-plan lands a done.
    let rt_disp = rt_trace.track("dispatcher").unwrap();
    let sim_disp = sim_trace.track("dispatcher").unwrap();
    assert_eq!(
        rt_disp.events_of(EventKind::MigrationStart).count() as u64,
        1 + report.adaptive_replans,
        "one dual-ownership window + one start per re-plan"
    );
    assert_eq!(
        rt_disp.events_of(EventKind::MigrationDone).count() as u64,
        report.migration_steps,
        "every chunk flip and re-plan completes"
    );
    assert_eq!(sim_disp.events_of(EventKind::MigrationStart).count(), 0);
    assert_eq!(sim_disp.events_of(EventKind::MigrationDone).count(), 0);

    // The merged spec keeps the replay shape contract with the overlay
    // epochs appended.
    let spec = cluster.replay_spec();
    assert_eq!(spec.events.len() + 1, spec.epochs.len());
    assert_eq!(report.epochs.len(), spec.epochs.len());
    assert_eq!(
        spec.events.iter().filter_map(|ev| ev.failed).count(),
        1,
        "only the failure retries in-flight batches"
    );
}

// ---------------------------------------------------------------------------
// Chaos plane: deterministic fault injection + lifecycle hardening.
// The fault schedule lives entirely in the config, so the replay twin
// must reproduce every timeout, hedge, backoff retry, and brownout shed
// bit-for-bit from the shipped spec.
// ---------------------------------------------------------------------------

use mprec::data::scenario::{ChaosConfig, FaultEvent, FaultKind, FaultPlan};

/// Arms a fault plan under the fully hardened lifecycle profile.
fn chaotic(mut cfg: ClusterConfig, faults: FaultPlan) -> ClusterConfig {
    cfg.faults = faults;
    cfg.chaos = ChaosConfig::hardened();
    cfg
}

/// Runs both twins with the flight recorder on and pins the complete
/// agreement contract: outcomes, decision trail, chaos counters, and
/// the dispatcher trace event-for-event.
fn assert_chaos_twins(cfg: ClusterConfig) -> (ClusterReport, ClusterReplayResult) {
    let cfg = ClusterConfig {
        recorder: TraceConfig::enabled(),
        ..cfg
    };
    let cluster = Cluster::new(cfg.clone()).expect("cluster builds");
    let report = cluster.serve().expect("cluster serves");
    let trace = scenario::generate(cfg.trace, cfg.scenario, cfg.seed);
    let (sim, sim_trace) = replay_cluster_traced(
        &cluster.replay_spec(),
        &trace,
        &ReplayConfig {
            sla_us: cfg.sla_us,
            max_batch_samples: cfg.max_batch_samples,
            max_batch_wait_us: cfg.max_batch_wait_us,
            classes: Vec::new(),
        },
        TraceConfig::enabled(),
    );
    assert_cluster_agreement(&cluster, &report, &sim);
    let rt_trace = report.trace.as_ref().expect("cluster recorded a trace");
    let sim_trace = sim_trace.expect("replay recorded a trace");
    assert_trace_twin_agreement(rt_trace, &sim_trace);
    (report, sim)
}

#[test]
fn straggler_chaos_twins_agree_event_for_event() {
    let base = cluster_cfg(3, 2, 0);
    let span = scenario::nominal_span_us(base.trace.num_queries, base.trace.qps);
    // Straggle every node: a hedge to a healthy neighbour would finish
    // inside the timeout budget, but with the whole cluster slow the
    // ladder has to walk timeout -> hedge -> backoff retry -> forced
    // completion.
    let faults = FaultPlan {
        events: (0..3)
            .map(|node| FaultEvent {
                node,
                from_us: 0.2 * span,
                until_us: 0.7 * span,
                kind: FaultKind::Straggler { factor: 5.0 },
            })
            .collect(),
    };
    let (report, _) = assert_chaos_twins(chaotic(base, faults));

    // The 5x straggler blows straight through the 3x timeout budget, so
    // the hardened lifecycle must visibly fire on every rung.
    assert!(report.leg_timeouts > 0, "straggler legs timed out");
    assert!(report.hedged_legs > 0, "slow legs were hedged");
    assert!(report.leg_retries > 0, "timed-out legs retried with backoff");
    let rt_trace = report.trace.as_ref().unwrap();
    let disp = rt_trace.track("dispatcher").unwrap();
    assert_eq!(
        disp.events_of(EventKind::Timeout).count() as u64,
        report.leg_timeouts,
        "every leg timeout traced"
    );
    assert_eq!(
        disp.events_of(EventKind::Hedge).count() as u64,
        report.hedged_legs,
        "every hedge traced"
    );
}

#[test]
fn scatter_loss_chaos_twins_agree_event_for_event() {
    let base = cluster_cfg(3, 2, 0);
    let span = scenario::nominal_span_us(base.trace.num_queries, base.trace.qps);
    let faults = FaultPlan {
        events: vec![FaultEvent {
            node: 1,
            from_us: 0.2 * span,
            until_us: 0.6 * span,
            kind: FaultKind::ScatterLoss,
        }],
    };
    let (report, sim) = assert_chaos_twins(chaotic(base, faults));

    // A lost first attempt can never finish, so affected legs must be
    // rescued by the hedge (next ring owner) or the backoff retry.
    assert!(report.hedged_legs > 0, "lost legs were hedged");
    assert!(
        report.leg_timeouts + report.hedged_legs > 0,
        "scatter loss exercised the hardening ladder"
    );
    assert_eq!(
        report.outcome.completed, sim.outcome.completed,
        "no query outcome is silently lost to scatter loss"
    );
}

#[test]
fn fault_storm_twins_agree_and_brownout_sheds_explicitly() {
    let base = cluster_cfg(3, 2, 0);
    let span = scenario::nominal_span_us(base.trace.num_queries, base.trace.qps);
    let mut cfg = chaotic(base, FaultPlan::storm(3, span));
    // Tighten the brownout ladder so the storm's backlog actually walks
    // all three rungs (narrow -> table-only -> shed) inside this trace.
    cfg.chaos.brownout_narrow_us = 1_500.0;
    cfg.chaos.brownout_table_only_us = 3_000.0;
    cfg.chaos.brownout_shed_us = 4_500.0;
    let (report, sim) = assert_chaos_twins(cfg);

    assert!(report.shed_queries > 0, "the storm shed low-priority queries");
    assert_eq!(
        report.outcome.completed + report.shed_queries,
        500,
        "every query either completes or is shed explicitly"
    );
    assert_eq!(report.shed_queries, sim.shed_queries, "twins shed identically");
    let rt_trace = report.trace.as_ref().unwrap();
    let disp = rt_trace.track("dispatcher").unwrap();
    assert_eq!(
        disp.events_of(EventKind::Shed).count() as u64,
        report.shed_queries,
        "every shed is an explicit traced outcome"
    );
}

// ---------------------------------------------------------------------------
// Multi-tenant open-loop traffic: with a `TrafficConfig` mix the
// dispatchers batch per tenant, route each flush through the tenant's
// SLA class (per-class brownout ladder composed with the chaos plane),
// and report per-tenant rows. The replay twins must reproduce every
// per-tenant number exactly — bit-equal latency sums included — and
// the per-tenant rows must partition the trace.
// ---------------------------------------------------------------------------

/// Two-tenant mix: a strict interactive tenant (never class-degraded)
/// and a loose batch tenant whose degradation ladder is tightened so
/// this short overloaded trace actually walks narrow -> table-only ->
/// shed for the loose class only.
fn tenant_mix() -> TrafficConfig {
    let mut batch = TenantSpec::batch("score", 200, 2_500.0);
    batch.sla = SlaClass {
        sla_us: 8_000.0,
        narrow_backlog_us: 1_500.0,
        table_only_backlog_us: 3_000.0,
        shed_backlog_us: 4_500.0,
    };
    TrafficConfig::new(vec![TenantSpec::ranking("rank", 300, 4_000.0), batch])
}

fn tenant_classes(mix: &TrafficConfig) -> Vec<SlaClass> {
    mix.tenants.iter().map(|t| t.sla).collect()
}

/// Pins the per-tenant twin rows field-for-field and checks that the
/// rows partition the trace (every query is exactly one tenant's
/// completed or shed outcome).
fn assert_tenant_twin_agreement(
    rows: &[TenantReport],
    sim_rows: &[TenantOutcome],
    total_queries: u64,
) {
    assert_eq!(rows.len(), sim_rows.len(), "tenant row counts");
    let mut completed_or_shed = 0;
    for (r, s) in rows.iter().zip(sim_rows.iter()) {
        let t = r.tenant;
        assert_eq!(r.completed, s.completed, "tenant {t} completed");
        assert_eq!(r.samples, s.samples, "tenant {t} samples");
        assert_eq!(r.shed_queries, s.shed_queries, "tenant {t} shed queries");
        assert_eq!(
            r.virtual_sla_violations, s.sla_violations,
            "tenant {t} virtual SLA violations"
        );
        assert_eq!(
            r.latency_sum_us.to_bits(),
            s.latency_sum_us.to_bits(),
            "tenant {t} latency sums are bit-equal ({} vs {})",
            r.latency_sum_us,
            s.latency_sum_us
        );
        assert_eq!(
            r.virtual_histogram.count(),
            r.completed,
            "tenant {t}: one histogram sample per completed query"
        );
        completed_or_shed += r.completed + r.shed_queries;
    }
    assert_eq!(
        completed_or_shed, total_queries,
        "per-tenant rows partition the trace"
    );
}

#[test]
fn multi_tenant_engine_twins_agree_per_tenant() {
    let mix = tenant_mix();
    let mut cfg = RuntimeConfig {
        tenants: mix.clone(),
        recorder: TraceConfig::enabled(),
        ..runtime_cfg(2, 0)
    };
    // Pin the per-tenant id skews explicitly so the cache twin below
    // builds the same model the engine normalizes internally.
    cfg.model.tenant_zipf = mix.tenants.iter().map(|t| t.id_zipf).collect();
    let engine = mprec::runtime::Engine::new(cfg.clone()).expect("engine builds");
    let report = engine.serve().expect("runtime serves");
    let trace = mix.generate(cfg.seed);
    let (sim, sim_trace) = replay_traced(
        engine.mapping_set(),
        &trace,
        &ReplayConfig {
            sla_us: cfg.sla_us,
            max_batch_samples: cfg.max_batch_samples,
            max_batch_wait_us: cfg.max_batch_wait_us,
            classes: tenant_classes(&mix),
        },
        TraceConfig::enabled(),
    );
    let paths = engine.paths().to_vec();
    assert_agreement(&report, &sim, &paths);
    assert_eq!(report.shed_queries, sim.shed_queries, "shed accounting");
    assert_tenant_twin_agreement(&report.tenants, &sim.tenants, trace.len() as u64);
    assert_eq!(
        report.cache,
        twin_cache_stats(&cfg, &sim, &paths),
        "cache counters under tenant-packed query ids"
    );
    assert_trace_twin_agreement(
        report.trace.as_ref().expect("runtime recorded a trace"),
        &sim_trace.expect("replay recorded a trace"),
    );

    // Non-vacuity: both tenants served traffic, the strict tenant
    // violated its 2 ms target under this overload, and only the loose
    // class was shed by its tightened ladder.
    let strict = &report.tenants[0];
    let loose = &report.tenants[1];
    assert!(strict.completed > 0 && loose.completed > 0, "both tenants served");
    assert!(
        strict.virtual_sla_violations > 0,
        "strict tenant must see violations (got none; tighten the SLA)"
    );
    assert_eq!(strict.shed_queries, 0, "strict class is never class-shed");
    assert!(
        loose.shed_queries > 0,
        "loose class must shed under this backlog (got none; lower the ladder)"
    );
}

#[test]
fn multi_tenant_cluster_twins_agree_per_tenant_across_churn() {
    let mix = tenant_mix();
    let span = mix
        .tenants
        .iter()
        .map(|t| scenario::nominal_span_us(t.queries, t.qps))
        .fold(0.0, f64::max);
    let mut cfg = cluster_cfg(3, 2, 0);
    cfg.tenants = mix.clone();
    cfg.model.tenant_zipf = mix.tenants.iter().map(|t| t.id_zipf).collect();
    cfg.churn = scenario::node_churn(cfg.nodes, span);
    cfg.recorder = TraceConfig::enabled();
    let cluster = Cluster::new(cfg.clone()).expect("cluster builds");
    let report = cluster.serve().expect("cluster serves");
    let trace = mix.generate(cfg.seed);
    let (sim, sim_trace) = replay_cluster_traced(
        &cluster.replay_spec(),
        &trace,
        &ReplayConfig {
            sla_us: cfg.sla_us,
            max_batch_samples: cfg.max_batch_samples,
            max_batch_wait_us: cfg.max_batch_wait_us,
            classes: tenant_classes(&mix),
        },
        TraceConfig::enabled(),
    );
    assert_cluster_agreement(&cluster, &report, &sim);
    assert_tenant_twin_agreement(&report.tenants, &sim.tenants, trace.len() as u64);
    assert_eq!(
        report.cache,
        merged_twin_stats(&cfg, &cluster, &sim),
        "merged cache counters under tenant-packed ids across churn"
    );
    assert_trace_twin_agreement(
        report.trace.as_ref().expect("cluster recorded a trace"),
        &sim_trace.expect("replay recorded a trace"),
    );

    // The churn epochs and the class ladder must both be live in this
    // run, and class shedding must hit the loose tenant first.
    assert_eq!(cluster.epochs().len(), 3, "boot + fail + join epochs");
    let strict = &report.tenants[0];
    let loose = &report.tenants[1];
    assert!(strict.completed > 0 && loose.completed > 0, "both tenants served");
    assert_eq!(strict.shed_queries, 0, "strict class is never class-shed");
    assert!(
        loose.shed_queries > 0,
        "loose class must shed under churned backlog (got none; lower the ladder)"
    );
}
