//! Differential sim-vs-runtime harness: the discrete-event replay
//! simulator (`mprec-serving::replay`) and the real multi-threaded
//! runtime (`mprec-runtime`) implement the *same serving contract*
//! (micro-batching, Algorithm-2 routing, virtual-time SLA accounting)
//! independently. On identical traces and configs they must agree
//! exactly on:
//!
//! * outcome counts — completed queries, samples, virtual SLA
//!   violations, per-path usage, correct samples (bit-equal: both sides
//!   accumulate in dispatch order);
//! * the per-batch path-selection decision trail;
//! * MP-Cache hit/miss/eviction counters, predicted by replaying the
//!   simulator's batch trail against a twin cache with the runtime's
//!   own deterministic ID draws.
//!
//! Any drift between the simulated and executed serving stacks fails
//! here before it can skew a paper figure.

use mprec::data::query::QueryTraceConfig;
use mprec::data::scenario::{self, LoadScenario};
use mprec::runtime::{
    serve, Cluster, ClusterConfig, PathKind, RuntimeConfig, RuntimeModel, RuntimeModelConfig,
    RuntimeReport,
};
use mprec::serving::replay::{replay, ReplayConfig, ReplayResult};

fn model_cfg(dynamic_entries: usize) -> RuntimeModelConfig {
    RuntimeModelConfig {
        sparse_features: 3,
        rows_per_feature: 800,
        emb_dim: 4,
        dhe_k: 8,
        dhe_dnn: 8,
        dhe_h: 1,
        top_hidden: vec![8],
        encoder_cache_bytes: 2_048,
        decoder_centroids: 8,
        dynamic_cache_entries: dynamic_entries,
        profile_accesses: 3_000,
        ..RuntimeModelConfig::default()
    }
}

fn runtime_cfg(workers: usize, dynamic_entries: usize) -> RuntimeConfig {
    RuntimeConfig {
        workers,
        cache_shards: 4,
        trace: QueryTraceConfig {
            num_queries: 600,
            mean_size: 5.0,
            sigma: 1.0,
            max_size: 20,
            qps: 4000.0,
            poisson_arrivals: true,
        },
        model: model_cfg(dynamic_entries),
        max_batch_samples: 40,
        seed: 17,
        // Slow virtual compute + a tight SLA so routing actually
        // switches paths (hybrid early, table under backlog) and
        // violations occur — the agreement is then non-trivial.
        virtual_gflops: 0.01,
        sla_us: 2_500.0,
        ..RuntimeConfig::default()
    }
}

/// Runs the runtime engine and the replay simulator on one config and
/// returns both results plus the path list of the shared mapping set.
fn run_both(cfg: RuntimeConfig) -> (RuntimeReport, ReplayResult, Vec<PathKind>) {
    let engine = mprec::runtime::Engine::new(cfg.clone()).expect("engine builds");
    let report = engine.serve().expect("runtime serves");
    let trace = scenario::generate(cfg.trace, cfg.scenario, cfg.seed);
    let sim = replay(
        engine.mapping_set(),
        &trace,
        &ReplayConfig {
            sla_us: cfg.sla_us,
            max_batch_samples: cfg.max_batch_samples,
            max_batch_wait_us: cfg.max_batch_wait_us,
        },
    );
    (report, sim, engine.paths().to_vec())
}

/// Asserts the deterministic (virtual-time) agreement contract.
fn assert_agreement(report: &RuntimeReport, sim: &ReplayResult, paths: &[PathKind]) {
    assert_eq!(report.outcome.completed, sim.outcome.completed, "completed");
    assert_eq!(report.outcome.samples, sim.outcome.samples, "samples");
    assert_eq!(
        report.virtual_sla_violations, sim.outcome.sla_violations,
        "virtual SLA violations"
    );
    assert_eq!(report.outcome.usage, sim.outcome.usage, "per-path usage");
    assert_eq!(
        report.outcome.correct_samples, sim.outcome.correct_samples,
        "correct samples accumulate identically"
    );
    let sim_decisions: Vec<PathKind> =
        sim.decisions().iter().map(|&idx| paths[idx]).collect();
    assert_eq!(
        report.path_decisions, sim_decisions,
        "per-batch path-selection trail"
    );
}

/// Predicts the runtime's cache counters by replaying the simulator's
/// batch trail (path + query specs, in dispatch order) against a twin
/// model's cache with the same deterministic ID draws.
fn twin_cache_stats(
    cfg: &RuntimeConfig,
    sim: &ReplayResult,
    paths: &[PathKind],
) -> mprec::core::CacheStats {
    let twin =
        RuntimeModel::build(&cfg.model, cfg.cache_shards, cfg.seed).expect("twin builds");
    let mut scratch = twin.make_scratch();
    for batch in &sim.batches {
        twin.replay_cache_accesses(paths[batch.mapping_idx], &batch.queries, &mut scratch)
            .expect("twin replay");
    }
    twin.cache().stats()
}

#[test]
fn single_worker_runtime_agrees_with_replay_including_dynamic_cache() {
    // One worker executes batches in dispatch order, so even the
    // order-sensitive dynamic tier must match the sequential replay.
    let cfg = runtime_cfg(1, 256);
    let (report, sim, paths) = run_both(cfg.clone());
    assert_eq!(report.outcome.completed, 600);
    assert!(
        report.virtual_sla_violations > 0,
        "config must exercise violations (got none; tighten the SLA)"
    );
    assert!(
        report
            .path_decisions
            .iter()
            .any(|&p| p != report.path_decisions[0]),
        "config must exercise path switching"
    );
    assert_agreement(&report, &sim, &paths);
    assert_eq!(
        report.cache,
        twin_cache_stats(&cfg, &sim, &paths),
        "cache hit/miss/eviction counters"
    );
}

#[test]
fn multi_worker_runtime_agrees_with_replay_on_static_cache_counts() {
    // With the dynamic tier disabled the cache counters are a pure
    // per-key function, so they are worker-interleaving-invariant and
    // must still match the sequential twin exactly.
    let cfg = runtime_cfg(3, 0);
    let (report, sim, paths) = run_both(cfg.clone());
    assert_agreement(&report, &sim, &paths);
    assert_eq!(
        report.cache,
        twin_cache_stats(&cfg, &sim, &paths),
        "static-tier counters are interleaving-invariant"
    );
}

#[test]
fn agreement_holds_across_load_scenarios() {
    for scenario_label in ["diurnal", "flash", "hotkey"] {
        let cfg = RuntimeConfig {
            scenario: LoadScenario::default_of(scenario_label).expect("known scenario"),
            ..runtime_cfg(2, 0)
        };
        let (report, sim, paths) = run_both(cfg.clone());
        assert_eq!(
            report.outcome.completed, 600,
            "{scenario_label}: all queries complete"
        );
        assert_agreement(&report, &sim, &paths);
        assert_eq!(
            report.cache,
            twin_cache_stats(&cfg, &sim, &paths),
            "{scenario_label}: cache counters"
        );
    }
}

#[test]
fn cluster_runtime_agrees_with_replay_over_its_critical_path_profiles() {
    // The cluster front-end routes over slowest-shard profiles; feeding
    // those same profiles to the replay simulator must reproduce its
    // decision trail and outcome counts, and a single twin model (the
    // whole feature space, dynamic tier disabled) must predict the
    // *merged* per-node cache counters.
    let cfg = ClusterConfig {
        nodes: 3,
        workers_per_node: 2,
        cache_shards: 4,
        trace: QueryTraceConfig {
            num_queries: 500,
            mean_size: 5.0,
            sigma: 1.0,
            max_size: 20,
            qps: 4000.0,
            poisson_arrivals: true,
        },
        model: model_cfg(0),
        max_batch_samples: 40,
        seed: 23,
        virtual_gflops: 0.005,
        sla_us: 2_500.0,
        ..ClusterConfig::default()
    };
    let cluster = Cluster::new(cfg.clone()).expect("cluster builds");
    let report = cluster.serve().expect("cluster serves");
    let trace = scenario::generate(cfg.trace, cfg.scenario, cfg.seed);
    let sim = replay(
        cluster.mapping_set(),
        &trace,
        &ReplayConfig {
            sla_us: cfg.sla_us,
            max_batch_samples: cfg.max_batch_samples,
            max_batch_wait_us: cfg.max_batch_wait_us,
        },
    );
    assert_eq!(report.outcome.completed, sim.outcome.completed);
    assert_eq!(report.outcome.samples, sim.outcome.samples);
    assert_eq!(report.virtual_sla_violations, sim.outcome.sla_violations);
    assert_eq!(report.outcome.usage, sim.outcome.usage);
    assert_eq!(report.outcome.correct_samples, sim.outcome.correct_samples);
    let sim_decisions: Vec<PathKind> = sim
        .decisions()
        .iter()
        .map(|&idx| cluster.paths()[idx])
        .collect();
    assert_eq!(report.path_decisions, sim_decisions);

    let twin = RuntimeModel::build(&cfg.model, cfg.cache_shards, cfg.seed).expect("twin");
    let mut scratch = twin.make_scratch();
    for batch in &sim.batches {
        twin.replay_cache_accesses(
            cluster.paths()[batch.mapping_idx],
            &batch.queries,
            &mut scratch,
        )
        .expect("twin replay");
    }
    assert_eq!(
        report.cache,
        twin.cache().stats(),
        "merged per-node counters equal the whole-feature-space twin"
    );
}

#[test]
fn runtime_and_replay_stay_in_lockstep_across_worker_counts() {
    // The replay simulator is worker-oblivious; the runtime must agree
    // with it for every worker count (i.e. worker-count invariance of
    // the deterministic contract, stated differentially).
    let reference = {
        let (_, sim, paths) = run_both(runtime_cfg(1, 0));
        (sim, paths)
    };
    for workers in [2usize, 4] {
        let report = serve(runtime_cfg(workers, 0)).expect("runtime serves");
        assert_agreement(&report, &reference.0, &reference.1);
    }
}

#[test]
fn replay_sees_scenario_load_shapes_through_the_shared_trace() {
    // Same mapping set, different scenarios: the flash-crowd burst must
    // raise virtual SLA violations over steady in *both* stacks (sanity
    // that the differential harness isn't vacuously comparing empty
    // behavior).
    let steady_cfg = runtime_cfg(1, 0);
    let flash_cfg = RuntimeConfig {
        scenario: LoadScenario::FlashCrowd {
            start_frac: 0.3,
            duration_frac: 0.3,
            multiplier: 6.0,
        },
        ..steady_cfg.clone()
    };
    let (steady_rt, steady_sim, _) = run_both(steady_cfg);
    let (flash_rt, flash_sim, _) = run_both(flash_cfg);
    assert!(
        flash_rt.virtual_sla_violations > steady_rt.virtual_sla_violations,
        "runtime: flash {} !> steady {}",
        flash_rt.virtual_sla_violations,
        steady_rt.virtual_sla_violations
    );
    assert!(
        flash_sim.outcome.sla_violations > steady_sim.outcome.sla_violations,
        "sim: flash {} !> steady {}",
        flash_sim.outcome.sla_violations,
        steady_sim.outcome.sla_violations
    );
}
