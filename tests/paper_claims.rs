//! Paper-claim regression tests: the headline quantitative shapes the
//! reproduction must preserve (capacities, latency ratios, serving wins).
//! These are the fast, deterministic subset; the full numbers live in
//! `EXPERIMENTS.md` and regenerate via `mprec-bench`.

use mprec::core::candidates::{default_accuracy_book, paper_candidates, RepRole};
use mprec::core::planner::plan;
use mprec::data::query::QueryTraceConfig;
use mprec::data::{DatasetSpec, KAGGLE_CARDINALITIES};
use mprec::hwsim::{Platform, WorkloadBuilder};
use mprec::scaling::{ClusterSpec, TrainingStepModel};
use mprec::serving::{simulate, Policy, ServingConfig};

#[test]
fn table3_kaggle_capacities() {
    // Paper Table 3 (Kaggle): 2.16 GB / 126 MB / 2.29 GB / 4.58 GB.
    let spec = DatasetSpec::kaggle_sim(100);
    let cands = paper_candidates(&spec, &default_accuracy_book(&spec));
    let get = |r: RepRole| {
        cands
            .iter()
            .find(|c| c.role == r)
            .expect("role present")
            .capacity_bytes() as f64
    };
    assert!((get(RepRole::Table) / 1e9 - 2.16).abs() < 0.05);
    assert!((get(RepRole::Dhe) / 1e6 - 126.0).abs() < 20.0);
    assert!((get(RepRole::Hybrid) / 1e9 - 2.29).abs() < 0.06);
    let mp_rec = get(RepRole::Hybrid) + get(RepRole::Table) + get(RepRole::Dhe);
    assert!((mp_rec / 1e9 - 4.58).abs() < 0.15, "mp-rec {mp_rec}");
}

#[test]
fn fig5_slowdown_shape() {
    // DHE ~10x slower than table on CPU; the GPU gap is much smaller;
    // select sits between table and DHE (paper: 10.5x/4.7x and 2.1x/1.5x).
    let b = WorkloadBuilder::new("kaggle", KAGGLE_CARDINALITIES.to_vec(), 13);
    let table = b.table(16).unwrap();
    let dhe = b.dhe(512, 256, 2, 16).unwrap();
    let select = b.select(16, 512, 256, 2, 3).unwrap();
    let ratio = |p: &Platform, w| p.query_time_us(w, 128).unwrap();
    let cpu = Platform::cpu();
    let gpu = Platform::gpu();
    let cpu_dhe = ratio(&cpu, &dhe) / ratio(&cpu, &table);
    let gpu_dhe = ratio(&gpu, &dhe) / ratio(&gpu, &table);
    let cpu_sel = ratio(&cpu, &select) / ratio(&cpu, &table);
    assert!((6.0..16.0).contains(&cpu_dhe), "cpu dhe slowdown {cpu_dhe}");
    assert!(gpu_dhe < cpu_dhe * 0.6, "gpu {gpu_dhe} vs cpu {cpu_dhe}");
    assert!((1.3..3.5).contains(&cpu_sel), "cpu select slowdown {cpu_sel}");
}

#[test]
fn fig7_tpu_and_ipu_headlines() {
    // TPU-2 ~3.12x / TPU-8 ~11.13x for tables; IPU-16 ~16.65x for DHE.
    let b = WorkloadBuilder::new("kaggle", KAGGLE_CARDINALITIES.to_vec(), 13);
    let table = b.table(16).unwrap();
    let dhe = b.dhe(512, 256, 2, 16).unwrap();
    let t_cpu = Platform::cpu().query_time_us(&table, 2048).unwrap();
    let tpu2 = t_cpu / Platform::tpu(2).query_time_us(&table, 2048).unwrap();
    let tpu8 = t_cpu / Platform::tpu(8).query_time_us(&table, 2048).unwrap();
    let ipu16 = t_cpu / Platform::ipu(16).query_time_us(&dhe, 2048).unwrap();
    assert!((2.2..4.2).contains(&tpu2), "tpu-2 {tpu2} (paper 3.12)");
    assert!((8.0..15.0).contains(&tpu8), "tpu-8 {tpu8} (paper 11.13)");
    assert!((11.0..21.0).contains(&ipu16), "ipu-16 {ipu16} (paper 16.65)");
}

#[test]
fn fig7_gpu_energy_wins_for_tables() {
    // O3: GPU is the most energy-efficient platform for large table models.
    let b = WorkloadBuilder::new("kaggle", KAGGLE_CARDINALITIES.to_vec(), 13);
    let table = b.table(16).unwrap();
    let gpu = Platform::gpu().energy_per_query_j(&table, 2048).unwrap();
    for p in [Platform::cpu(), Platform::tpu(2), Platform::tpu(8), Platform::ipu(4)] {
        let e = p.energy_per_query_j(&table, 2048).unwrap();
        assert!(gpu < e, "GPU {gpu} J should beat {} {e} J", p.name);
    }
}

#[test]
fn fig10_mp_rec_beats_baseline_by_at_least_2x() {
    // Paper: 2.49x on Kaggle. Allow a generous band for the shorter trace.
    let spec = DatasetSpec::kaggle_sim(100);
    let cands = paper_candidates(&spec, &default_accuracy_book(&spec));
    let maps = plan(
        &cands,
        &[Platform::cpu().with_dram_cap(32_000_000_000), Platform::gpu()],
    )
    .expect("plan");
    let cfg = ServingConfig {
        trace: QueryTraceConfig {
            num_queries: 3_000,
            ..QueryTraceConfig::default()
        },
        ..ServingConfig::default()
    };
    let base = simulate(
        &maps,
        Policy::Static {
            role: RepRole::Table,
            platform_idx: 0,
        },
        &cfg,
    );
    let mp = simulate(&maps, Policy::MpRec, &cfg);
    let x = mp.correct_sps() / base.correct_sps();
    assert!((1.8..3.5).contains(&x), "speedup {x} (paper 2.49x)");
}

#[test]
fn fig17_mp_rec_cuts_sla_violations() {
    // Paper at 10 ms / 400 QPS: TBL(CPU) 30.73% -> MP-Rec 3.14%.
    let spec = DatasetSpec::kaggle_sim(100);
    let cands = paper_candidates(&spec, &default_accuracy_book(&spec));
    let maps = plan(
        &cands,
        &[Platform::cpu().with_dram_cap(32_000_000_000), Platform::gpu()],
    )
    .expect("plan");
    let cfg = ServingConfig {
        trace: QueryTraceConfig {
            num_queries: 3_000,
            qps: 400.0,
            ..QueryTraceConfig::default()
        },
        ..ServingConfig::default()
    };
    let base = simulate(
        &maps,
        Policy::Static {
            role: RepRole::Table,
            platform_idx: 0,
        },
        &cfg,
    );
    let mp = simulate(&maps, Policy::MpRec, &cfg);
    assert!(
        base.sla_violation_rate() > 0.10,
        "baseline violations {:.3} too low to be interesting",
        base.sla_violation_rate()
    );
    assert!(
        mp.sla_violation_rate() < base.sla_violation_rate() / 2.0,
        "mp-rec {:.3} vs baseline {:.3}",
        mp.sla_violation_rate(),
        base.sla_violation_rate()
    );
}

#[test]
fn fig18_dhe_reduces_step_time() {
    // Paper: ~36% step reduction, ~40% exposed comm at baseline.
    let m = TrainingStepModel::terabyte_defaults();
    let c = ClusterSpec::zionex_128();
    let comm = m.sharded_step(&c).comm_fraction();
    let red = m.dhe_step_reduction(&c);
    assert!((0.3..0.55).contains(&comm), "comm fraction {comm}");
    assert!((0.2..0.45).contains(&red), "reduction {red}");
}

#[test]
fn accuracy_book_matches_paper_deltas() {
    // Paper Table 2 deltas: DHE +0.15%, hybrid +0.19% over tables.
    for spec in [DatasetSpec::kaggle_sim(100), DatasetSpec::terabyte_sim(100)] {
        let book = default_accuracy_book(&spec);
        let dhe_delta = book.dhe - book.table;
        let hybrid_delta = book.hybrid - book.table;
        assert!(
            (0.0005..0.004).contains(&dhe_delta),
            "dhe delta {dhe_delta}"
        );
        assert!(
            hybrid_delta > dhe_delta,
            "hybrid {hybrid_delta} !> dhe {dhe_delta}"
        );
    }
}
