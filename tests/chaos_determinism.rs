//! Determinism of the chaos plane: a fault schedule and the hardened
//! serving behavior it provokes are pure functions of `(config, seed)`.
//! Same seed must mean the same `FaultPlan` and the same
//! `ClusterReport` — across repeated runs *and* across worker counts,
//! because every timeout, hedge, backoff retry, and brownout shed is
//! decided in virtual time, never by wall-clock scheduling.

use mprec::data::query::QueryTraceConfig;
use mprec::data::scenario::{ChaosConfig, FaultPlan};
use mprec::runtime::{Cluster, ClusterConfig, ClusterReport, RuntimeModelConfig};
use proptest::prelude::*;

fn chaos_cluster_cfg(seed: u64, workers_per_node: usize) -> ClusterConfig {
    let trace = QueryTraceConfig {
        num_queries: 200,
        mean_size: 5.0,
        sigma: 1.0,
        max_size: 20,
        qps: 4000.0,
        poisson_arrivals: true,
    };
    let span = mprec::data::scenario::nominal_span_us(trace.num_queries, trace.qps);
    ClusterConfig {
        nodes: 3,
        workers_per_node,
        cache_shards: 4,
        trace,
        model: RuntimeModelConfig {
            sparse_features: 3,
            rows_per_feature: 800,
            emb_dim: 4,
            dhe_k: 8,
            dhe_dnn: 8,
            dhe_h: 1,
            top_hidden: vec![8],
            encoder_cache_bytes: 2_048,
            decoder_centroids: 8,
            dynamic_cache_entries: 0,
            profile_accesses: 3_000,
            ..RuntimeModelConfig::default()
        },
        max_batch_samples: 40,
        seed,
        virtual_gflops: 0.005,
        sla_us: 2_500.0,
        faults: FaultPlan::generate(3, span, seed),
        chaos: ChaosConfig::hardened(),
        ..ClusterConfig::default()
    }
}

fn run(cfg: ClusterConfig) -> ClusterReport {
    Cluster::new(cfg)
        .expect("cluster builds")
        .serve()
        .expect("cluster serves")
}

/// The full determinism fingerprint of one chaotic run: outcome counts,
/// per-path usage, the decision-trail length, and every chaos counter.
type Fingerprint = (u64, u64, u64, Vec<(String, u64)>, usize, u64, u64, u64, u64, u64);

fn fingerprint(r: &ClusterReport) -> Fingerprint {
    (
        r.outcome.completed,
        r.outcome.samples,
        r.virtual_sla_violations,
        r.outcome
            .usage
            .queries
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
        r.path_decisions.len(),
        r.retried_batches,
        r.shed_queries,
        r.leg_timeouts,
        r.hedged_legs,
        r.leg_retries,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn same_seed_same_fault_plan_and_same_report(seed in 0u64..1_000_000) {
        // The fault schedule itself is seed-pure.
        let plan_a = FaultPlan::generate(3, 125_000.0, seed);
        let plan_b = FaultPlan::generate(3, 125_000.0, seed);
        prop_assert_eq!(&plan_a.events, &plan_b.events, "fault schedule is seed-pure");

        // Two identical runs agree on everything the report pins.
        let first = run(chaos_cluster_cfg(seed, 2));
        let second = run(chaos_cluster_cfg(seed, 2));
        prop_assert_eq!(fingerprint(&first), fingerprint(&second), "repeat run diverged");
        prop_assert_eq!(
            &first.path_decisions, &second.path_decisions,
            "decision trail is seed-pure"
        );

        // Worker count is a wall-clock knob: virtual-time chaos
        // decisions must not see it.
        let wide = run(chaos_cluster_cfg(seed, 4));
        prop_assert_eq!(fingerprint(&first), fingerprint(&wide), "worker count leaked");
        prop_assert_eq!(
            &first.path_decisions, &wide.path_decisions,
            "decision trail depends on worker count"
        );

        // The hardened lifecycle plus a generated three-window fault
        // plan must not lose queries: everything completes or sheds.
        prop_assert_eq!(
            first.outcome.completed + first.shed_queries,
            200,
            "queries lost under chaos"
        );
    }
}
