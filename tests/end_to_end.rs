//! Cross-crate integration: data generation -> DLRM training -> offline
//! planning -> online serving, end to end on a small configuration.

use mprec::core::candidates::{default_accuracy_book, paper_candidates, RepRole};
use mprec::core::planner::plan;
use mprec::data::query::QueryTraceConfig;
use mprec::data::DatasetSpec;
use mprec::dlrm::{train, DlrmConfig, TrainConfig};
use mprec::embed::{DheConfig, RepresentationConfig};
use mprec::hwsim::Platform;
use mprec::serving::{simulate, Policy, ServingConfig};

fn tiny_train_cfg() -> TrainConfig {
    TrainConfig {
        steps: 40,
        batch_size: 64,
        eval_samples: 2_000,
        ..TrainConfig::default()
    }
}

#[test]
fn train_plan_serve_pipeline() {
    // 1. Train a real (tiny) model end to end.
    let spec = DatasetSpec::kaggle_sim(50_000);
    let rep = RepresentationConfig::table(8);
    let report = train(&spec, &DlrmConfig::for_spec(&spec, rep), &tiny_train_cfg())
        .expect("training");
    assert!(report.accuracy > 0.5);

    // 2. Plan mappings on HW-1.
    let candidates = paper_candidates(&spec, &default_accuracy_book(&spec));
    let platforms = vec![
        Platform::cpu().with_dram_cap(32_000_000_000),
        Platform::gpu(),
    ];
    let mappings = plan(&candidates, &platforms).expect("plan");
    assert!(mappings.mappings.len() >= 6);

    // 3. Serve a trace with MP-Rec.
    let cfg = ServingConfig {
        trace: QueryTraceConfig {
            num_queries: 300,
            ..QueryTraceConfig::default()
        },
        ..ServingConfig::default()
    };
    let outcome = simulate(&mappings, Policy::MpRec, &cfg);
    assert_eq!(outcome.completed, 300);
    assert!(outcome.correct_sps() > 0.0);
    assert!(outcome.effective_accuracy() > 0.78);
}

#[test]
fn every_representation_trains_and_predicts() {
    let spec = DatasetSpec::kaggle_sim(50_000);
    let dhe = DheConfig {
        k: 16,
        dnn: 16,
        h: 1,
        out_dim: 8,
    };
    for rep in [
        RepresentationConfig::table(8),
        RepresentationConfig::dhe(dhe),
        RepresentationConfig::select(8, dhe, 3),
        RepresentationConfig::hybrid(8, DheConfig { out_dim: 8, ..dhe }),
    ] {
        let kind = rep.kind;
        let report = train(&spec, &DlrmConfig::for_spec(&spec, rep), &tiny_train_cfg())
            .unwrap_or_else(|e| panic!("{kind:?} failed: {e}"));
        assert!(
            report.accuracy > 0.5,
            "{kind:?} accuracy {} below chance",
            report.accuracy
        );
        assert!(report.log_loss.is_finite());
    }
}

#[test]
fn planner_respects_hw2_budgets_end_to_end() {
    let spec = DatasetSpec::kaggle_sim(50_000);
    let candidates = paper_candidates(&spec, &default_accuracy_book(&spec));
    let platforms = vec![
        Platform::cpu().with_dram_cap(1_000_000_000),
        Platform::gpu().with_dram_cap(200_000_000),
    ];
    let mappings = plan(&candidates, &platforms).expect("plan HW-2");
    // Nothing placed may exceed its platform budget.
    for (idx, p) in mappings.platforms.iter().enumerate() {
        let used = mappings.footprint_bytes(idx);
        assert!(
            used <= p.memory_budget(),
            "platform {} over budget: {used} > {}",
            p.name,
            p.memory_budget()
        );
    }
    // Serving still works with only compute paths.
    let cfg = ServingConfig {
        trace: QueryTraceConfig {
            num_queries: 200,
            ..QueryTraceConfig::default()
        },
        ..ServingConfig::default()
    };
    let o = simulate(&mappings, Policy::MpRec, &cfg);
    assert_eq!(o.completed, 200);
}

#[test]
fn static_compute_paths_lose_to_mp_rec_under_load() {
    let spec = DatasetSpec::kaggle_sim(50_000);
    let candidates = paper_candidates(&spec, &default_accuracy_book(&spec));
    let platforms = vec![
        Platform::cpu().with_dram_cap(32_000_000_000),
        Platform::gpu(),
    ];
    let mappings = plan(&candidates, &platforms).expect("plan");
    let cfg = ServingConfig {
        trace: QueryTraceConfig {
            num_queries: 600,
            ..QueryTraceConfig::default()
        },
        ..ServingConfig::default()
    };
    let dhe = simulate(
        &mappings,
        Policy::Static {
            role: RepRole::Dhe,
            platform_idx: 1,
        },
        &cfg,
    );
    let mp = simulate(&mappings, Policy::MpRec, &cfg);
    assert!(mp.correct_sps() > dhe.correct_sps());
}
