//! Planner/scheduler boundary guardrails (Fig. 17): `plan()` must be
//! deterministic for a fixed input, and Algorithm 2 must never violate the
//! SLA declared in `ServingConfig` while a feasible path exists.

use mprec::core::candidates::{default_accuracy_book, paper_candidates};
use mprec::core::planner::{plan, MappingSet};
use mprec::core::scheduler::{Scheduler, SchedulerConfig};
use mprec::data::query::{QueryGenerator, QueryTraceConfig};
use mprec::data::DatasetSpec;
use mprec::hwsim::Platform;
use mprec::serving::{simulate, Policy, ServingConfig};

fn planned() -> MappingSet {
    let spec = DatasetSpec::kaggle_sim(100);
    let cands = paper_candidates(&spec, &default_accuracy_book(&spec));
    let platforms = vec![Platform::cpu().with_dram_cap(32_000_000_000), Platform::gpu()];
    plan(&cands, &platforms).expect("plan")
}

#[test]
fn plan_is_deterministic_across_runs() {
    let a = planned();
    let b = planned();
    assert_eq!(a.mappings.len(), b.mappings.len(), "mapping count drifted");
    for (ma, mb) in a.mappings.iter().zip(&b.mappings) {
        assert_eq!(ma.label(&a.platforms), mb.label(&b.platforms));
        assert_eq!(ma.platform_idx, mb.platform_idx);
        assert_eq!(ma.rep.accuracy, mb.rep.accuracy);
        assert_eq!(ma.rep.capacity_bytes(), mb.rep.capacity_bytes());
        for size in [1u64, 16, 128, 1024, 4096] {
            let (la, lb) = (ma.profile.latency_us(size), mb.profile.latency_us(size));
            assert_eq!(la, lb, "latency profile drifted at size {size}");
        }
    }
    for idx in 0..a.platforms.len() {
        assert_eq!(a.footprint_bytes(idx), b.footprint_bytes(idx));
    }
}

#[test]
fn scheduler_honors_sla_whenever_feasible() {
    let cfg = ServingConfig::default();
    let set = planned();
    let n_platforms = set.platforms.len();
    let mut sched = Scheduler::new(set, SchedulerConfig::default());

    let trace = QueryGenerator::new(
        QueryTraceConfig { num_queries: 2_000, ..QueryTraceConfig::default() },
        7,
    )
    .generate();

    let mut feasible_routed = 0u64;
    for q in &trace {
        sched.advance_to(q.arrival_us as f64);
        // A query is feasible iff some planned path finishes within the SLA
        // given current backlogs; compute that bound before routing.
        let best_possible = sched
            .mappings()
            .mappings
            .iter()
            .map(|m| sched.backlog_us(m.platform_idx) + m.profile.latency_us(q.size as u64))
            .fold(f64::INFINITY, f64::min);
        let (d, _) = sched.dispatch(q.size as u64, cfg.sla_us).expect("dispatch");
        assert!(d.platform_idx < n_platforms);
        if best_possible <= cfg.sla_us {
            feasible_routed += 1;
            assert!(
                d.expected_completion_us <= cfg.sla_us + 1e-6,
                "scheduler violated a feasible {}us SLA: completion {}us (best possible {}us, size {})",
                cfg.sla_us,
                d.expected_completion_us,
                best_possible,
                q.size
            );
        }
    }
    assert!(
        feasible_routed > trace.len() as u64 / 2,
        "trace too hard: only {feasible_routed}/{} queries had a feasible path",
        trace.len()
    );
}

#[test]
fn serving_sim_keeps_sla_violations_rare_at_paper_load() {
    // End-to-end guard for Fig. 17: at the figure's operating point
    // (400 QPS, 10 ms SLA) MP-Rec keeps SLA violations rare and is never
    // worse than the table-switching baseline.
    let set = planned();
    let cfg = ServingConfig {
        trace: QueryTraceConfig {
            num_queries: 4_000,
            qps: 400.0,
            ..QueryTraceConfig::default()
        },
        ..ServingConfig::default()
    };
    let mprec = simulate(&set, Policy::MpRec, &cfg);
    assert!(
        mprec.sla_violation_rate() < 0.05,
        "MP-Rec violation rate {:.4} at paper-default load",
        mprec.sla_violation_rate()
    );

    let baseline = simulate(&set, Policy::TableSwitching, &cfg);
    assert!(
        mprec.sla_violation_rate() <= baseline.sla_violation_rate() + 0.01,
        "MP-Rec ({:.4}) should not violate more than table-switching ({:.4})",
        mprec.sla_violation_rate(),
        baseline.sla_violation_rate()
    );
}
