//! Open-loop load discipline, end to end.
//!
//! Two suites:
//!
//! * **Coordinated-omission regression** — the same overloaded cell is
//!   driven closed-loop (the driver waits for each completion before
//!   sending the next query, measuring latency from the send instant)
//!   and open-loop (arrival timestamps pre-drawn, the queue grows).
//!   The closed-loop driver *must* report a flattering tail — that is
//!   the coordinated-omission artifact — so the open-loop p99 has to
//!   be strictly, and under sustained overload massively, higher. If
//!   this test ever fails the load engine has started politely waiting
//!   on the system under test.
//!
//! * **Tenant-accounting partition (property)** — across seeds, churn,
//!   and chaos, the per-tenant rows must partition the cluster totals
//!   exactly: every query in the trace is exactly one tenant's
//!   completed-or-shed outcome, and violations, samples, and histogram
//!   counts all foot to the cluster-level counters.

// The vendored proptest! macro is a token-muncher; keep bodies in
// helper fns and give the expansion extra headroom.
#![recursion_limit = "512"]

use mprec::data::scenario::{self, ChaosConfig, FaultPlan};
use mprec::data::traffic::{SlaClass, TenantSpec, TrafficConfig};
use mprec::runtime::{Cluster, ClusterConfig, RuntimeConfig, RuntimeModelConfig};
use mprec::serving::replay::{replay, replay_closed_loop, ReplayConfig};
use proptest::prelude::*;

fn model_cfg() -> RuntimeModelConfig {
    RuntimeModelConfig {
        sparse_features: 3,
        rows_per_feature: 800,
        emb_dim: 4,
        dhe_k: 8,
        dhe_dnn: 8,
        dhe_h: 1,
        top_hidden: vec![8],
        encoder_cache_bytes: 2_048,
        decoder_centroids: 8,
        dynamic_cache_entries: 0,
        profile_accesses: 3_000,
        ..RuntimeModelConfig::default()
    }
}

// ---------------------------------------------------------------------------
// Coordinated omission
// ---------------------------------------------------------------------------

/// Open-loop and closed-loop p99 of one cell at the given arrival rate.
fn p99_both_loops(qps: f64) -> (f64, f64) {
    let cfg = RuntimeConfig {
        workers: 1,
        cache_shards: 4,
        model: model_cfg(),
        max_batch_samples: 40,
        seed: 17,
        // Slow virtual compute: capacity sits well below 6k qps, so the
        // high-rate case is genuinely overloaded.
        virtual_gflops: 0.005,
        sla_us: 2_500.0,
        ..RuntimeConfig::default()
    };
    let engine = mprec::runtime::Engine::new(cfg.clone()).expect("engine builds");
    let trace = TrafficConfig::new(vec![TenantSpec::ranking("rank", 800, qps)]).generate(17);
    let rcfg = ReplayConfig {
        sla_us: cfg.sla_us,
        max_batch_samples: cfg.max_batch_samples,
        max_batch_wait_us: cfg.max_batch_wait_us,
        classes: Vec::new(),
    };
    let open = replay(engine.mapping_set(), &trace, &rcfg);
    let closed = replay_closed_loop(engine.mapping_set(), &trace, &rcfg);
    assert_eq!(open.outcome.completed, 800, "open loop completes every query");
    assert_eq!(closed.outcome.completed, 800, "closed loop completes every query");
    (open.outcome.p99_latency_us, closed.outcome.p99_latency_us)
}

#[test]
fn closed_loop_hides_the_overload_tail_that_open_loop_measures() {
    // Overloaded: arrivals outpace service even after Algorithm 2 has
    // degraded to its fastest path, the open-loop queue grows without
    // bound, and queueing delay dominates the tail. The closed-loop
    // driver self-throttles to the service rate and never sees that
    // queue — the classic coordinated-omission blind spot.
    let (open_p99, closed_p99) = p99_both_loops(25_000.0);
    assert!(
        open_p99 > closed_p99,
        "open-loop p99 {open_p99:.0}µs must strictly exceed closed-loop \
         p99 {closed_p99:.0}µs on an overloaded cell"
    );
    assert!(
        open_p99 > 5.0 * closed_p99,
        "under sustained overload the hidden queueing tail is not a \
         rounding error: open {open_p99:.0}µs vs closed {closed_p99:.0}µs"
    );

    // Control: at a light rate (far below capacity) neither driver
    // queues, so the two disciplines agree to within batching noise —
    // the overload divergence above is the artifact, not a constant
    // measurement offset.
    let (light_open, light_closed) = p99_both_loops(200.0);
    let light_ratio = light_open / light_closed.max(1.0);
    let overload_ratio = open_p99 / closed_p99.max(1.0);
    assert!(
        light_ratio < 3.0,
        "light load: open {light_open:.0}µs vs closed {light_closed:.0}µs \
         should roughly agree (ratio {light_ratio:.2})"
    );
    assert!(
        overload_ratio > 3.0 * light_ratio,
        "the open/closed gap must be an overload phenomenon \
         (overload ratio {overload_ratio:.2} vs light {light_ratio:.2})"
    );
}

// ---------------------------------------------------------------------------
// Tenant-accounting partition under churn and chaos
// ---------------------------------------------------------------------------

/// A strict interactive tenant plus a loose tenant with a reachable
/// degradation ladder, sized for a fast property case.
fn partition_mix() -> TrafficConfig {
    let mut batch = TenantSpec::batch("score", 100, 1_500.0);
    batch.sla = SlaClass {
        sla_us: 8_000.0,
        narrow_backlog_us: 1_500.0,
        table_only_backlog_us: 3_000.0,
        shed_backlog_us: 4_500.0,
    };
    TrafficConfig::new(vec![TenantSpec::ranking("rank", 150, 4_000.0), batch])
}

/// One property case: a churned (and optionally chaotic) cluster serve
/// whose per-tenant rows must foot exactly to the cluster totals.
fn check_tenant_partition(seed: u64, chaos_on: bool) -> Result<(), TestCaseError> {
    let mix = partition_mix();
    let span = mix
        .tenants
        .iter()
        .map(|t| scenario::nominal_span_us(t.queries, t.qps))
        .fold(0.0, f64::max);
    let cfg = ClusterConfig {
        nodes: 3,
        workers_per_node: 2,
        cache_shards: 4,
        model: model_cfg(),
        tenants: mix.clone(),
        churn: scenario::node_churn(3, span),
        faults: if chaos_on {
            FaultPlan::generate(3, span, seed)
        } else {
            FaultPlan::default()
        },
        chaos: if chaos_on { ChaosConfig::hardened() } else { ChaosConfig::default() },
        max_batch_samples: 40,
        seed,
        virtual_gflops: 0.005,
        sla_us: 2_500.0,
        ..ClusterConfig::default()
    };
    let report = Cluster::new(cfg).expect("cluster builds").serve().expect("cluster serves");

    let total = mix.total_queries() as u64;
    let mut completed = 0u64;
    let mut samples = 0u64;
    let mut shed = 0u64;
    let mut violations = 0u64;
    for row in &report.tenants {
        prop_assert!(
            row.virtual_sla_violations <= row.completed,
            "tenant {}: violations bounded by completions",
            row.tenant
        );
        prop_assert_eq!(
            row.virtual_histogram.count(),
            row.completed,
            "tenant {}: one histogram sample per completed query",
            row.tenant
        );
        completed += row.completed;
        samples += row.samples;
        shed += row.shed_queries;
        violations += row.virtual_sla_violations;
    }
    prop_assert_eq!(completed, report.outcome.completed, "completed partition");
    prop_assert_eq!(samples, report.outcome.samples, "sample partition");
    prop_assert_eq!(shed, report.shed_queries, "shed partition");
    prop_assert_eq!(violations, report.virtual_sla_violations, "violation partition");
    prop_assert_eq!(
        completed + shed,
        total,
        "every query is exactly one tenant's completed-or-shed outcome"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn tenant_rows_partition_cluster_totals_under_churn_and_chaos(
        seed in 0u64..10_000,
        chaos_on in any::<bool>(),
    ) {
        check_tenant_partition(seed, chaos_on)?;
    }
}
