//! Design-space exploration (paper §3): trains all four embedding
//! representations on the synthetic Kaggle-shaped dataset and reports the
//! accuracy / capacity / FLOPs trade-offs of Fig. 3, at reduced scale so
//! the example finishes in about a minute.
//!
//! Run with: `cargo run --release --example design_space [steps]`

use mprec::data::{DatasetSpec, KAGGLE_CARDINALITIES};
use mprec::dlrm::{train, DlrmConfig, TrainConfig};
use mprec::embed::{DheConfig, RepresentationConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let spec = DatasetSpec::kaggle_sim(2000);
    let dhe = DheConfig {
        k: 32,
        dnn: 48,
        h: 2,
        out_dim: 16,
    };
    let reps = vec![
        ("table", RepresentationConfig::table(16)),
        ("dhe", RepresentationConfig::dhe(dhe)),
        ("select", RepresentationConfig::select(16, dhe, 3)),
        ("hybrid", RepresentationConfig::hybrid(16, dhe)),
    ];

    println!(
        "{:8} {:>10} {:>14} {:>14} {:>10}",
        "rep", "accuracy", "paper cap", "flops/sample", "train s"
    );
    for (name, rep) in reps {
        let cfg = TrainConfig {
            steps,
            batch_size: 128,
            eval_samples: 20_000,
            ..TrainConfig::default()
        };
        let t0 = std::time::Instant::now();
        let report = train(&spec, &DlrmConfig::for_spec(&spec, rep.clone()), &cfg)?;
        // Capacity & FLOPs reported at paper scale (Fig. 3's axes).
        let paper_rep = match rep.kind {
            mprec::embed::RepresentationKind::Table => RepresentationConfig::table(16),
            mprec::embed::RepresentationKind::Dhe => {
                RepresentationConfig::dhe(RepresentationConfig::paper_scale_dhe(16))
            }
            mprec::embed::RepresentationKind::Select => RepresentationConfig::select(
                16,
                DheConfig {
                    k: 512,
                    dnn: 256,
                    h: 2,
                    out_dim: 16,
                },
                3,
            ),
            mprec::embed::RepresentationKind::Hybrid => {
                RepresentationConfig::hybrid(16, RepresentationConfig::paper_scale_dhe(16))
            }
        };
        println!(
            "{:8} {:>9.2}% {:>11.1} MB {:>14} {:>10.1}",
            name,
            report.accuracy * 100.0,
            paper_rep.capacity_bytes(&KAGGLE_CARDINALITIES) as f64 / 1e6,
            paper_rep.flops_per_sample(&KAGGLE_CARDINALITIES),
            t0.elapsed().as_secs_f32()
        );
    }
    println!("\n(expected shape: DHE compresses ~17x+, hybrid is most accurate,");
    println!(" compute-based representations carry orders more FLOPs — Fig. 3)");
    Ok(())
}
