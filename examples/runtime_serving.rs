//! Real multi-threaded serving with `mprec-runtime`: 10K queries arrive
//! open-loop at 2000 QPS, get micro-batched under a 10 ms SLA, routed by
//! Algorithm 2 in virtual time, and *actually executed* (table gathers,
//! DHE through the sharded MP-Cache, top MLP) on a 4-thread worker pool.
//! Prints measured p50/p95/p99 latency, SLA-violation rates (virtual and
//! measured), the path-activation breakdown, and MP-Cache hit rates.
//!
//! Run with: `cargo run --release --example runtime_serving`

use mprec::data::query::QueryTraceConfig;
use mprec::runtime::{serve, RoutePolicy, RuntimeConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = RuntimeConfig {
        workers: 4,
        pace_ingress: true,
        trace: QueryTraceConfig {
            num_queries: 10_000,
            qps: 2000.0,
            mean_size: 32.0,
            max_size: 512,
            ..QueryTraceConfig::default()
        },
        // Tight enough that Algorithm 2 visibly switches paths when the
        // virtual backlog spikes (Fig. 15's behaviour, live).
        sla_us: 4_000.0,
        ..RuntimeConfig::default()
    };
    let sla_ms = cfg.sla_us / 1000.0;
    println!(
        "serving {} queries open-loop at {} QPS on {} workers (SLA {sla_ms} ms)...",
        cfg.trace.num_queries, cfg.trace.qps, cfg.workers
    );
    let report = serve(cfg.clone())?;
    let o = &report.outcome;

    println!("\n== {} ==", o.policy);
    println!("completed queries      : {}", o.completed);
    println!("samples served         : {}", o.samples);
    println!("wall-clock span        : {:.2} s", o.span_s);
    println!("raw throughput         : {:.0} samples/s", o.raw_sps());
    println!("correct throughput     : {:.0} correct samples/s", o.correct_sps());
    println!("effective accuracy     : {:.2}%", o.effective_accuracy() * 100.0);
    println!("measured latency p50   : {:.2} ms", report.histogram.quantile_us(0.50) / 1000.0);
    println!("measured latency p95   : {:.2} ms", o.p95_latency_us / 1000.0);
    println!("measured latency p99   : {:.2} ms", o.p99_latency_us / 1000.0);
    println!(
        "SLA violations         : {:.2}% virtual-time, {:.2}% measured",
        100.0 * report.virtual_sla_violations as f64 / o.completed as f64,
        100.0 * report.measured_sla_violations as f64 / o.completed as f64,
    );

    println!("\npath-activation breakdown:");
    for (label, n) in &o.usage.queries {
        println!(
            "  {:12} {:>6} queries ({:>5.1}%)",
            label,
            n,
            o.usage.query_fraction(label) * 100.0
        );
    }

    let c = &report.cache;
    println!("\nsharded MP-Cache:");
    println!("  lookups              : {}", c.lookups());
    println!("  encoder hit rate     : {:.1}%", c.encoder_hit_rate() * 100.0);
    println!("  static / dynamic hits: {} / {}", c.encoder_hits, c.dynamic_hits);
    println!("  decoder-tier lookups : {}", c.decoder_lookups);
    println!("  dynamic evictions    : {}", c.evictions);

    // Contrast with a static single-path deployment (same trace/model).
    let fixed = serve(RuntimeConfig {
        route: RoutePolicy::Fixed(mprec::runtime::PathKind::Table),
        ..cfg
    })?;
    println!(
        "\nmulti-path vs fixed table: {:.0} vs {:.0} correct samples/s ({:+.1}% accuracy-weighted)",
        o.correct_sps(),
        fixed.outcome.correct_sps(),
        100.0 * (o.correct_samples / fixed.outcome.correct_samples - 1.0),
    );
    Ok(())
}
