//! Quickstart: plan representation-hardware mappings for a CPU-GPU
//! inference node (the paper's HW-1) and serve a query trace with MP-Rec,
//! comparing against the static table-on-CPU baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use mprec::core::candidates::{default_accuracy_book, paper_candidates, RepRole};
use mprec::core::planner::plan;
use mprec::data::query::QueryTraceConfig;
use mprec::data::DatasetSpec;
use mprec::hwsim::Platform;
use mprec::serving::{simulate, Policy, ServingConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The Kaggle-shaped dataset (real Criteo cardinalities; 1/100-scale
    //    training tables).
    let spec = DatasetSpec::kaggle_sim(100);
    println!(
        "dataset: {} ({} sparse features, baseline tables {:.2} GB)",
        spec.name,
        spec.num_sparse_features(),
        spec.baseline_table_bytes() as f64 / 1e9
    );

    // 2. The candidate representation space with measured accuracies.
    let book = default_accuracy_book(&spec);
    let candidates = paper_candidates(&spec, &book);
    for c in &candidates {
        println!(
            "  candidate {:12} capacity {:>9.1} MB  accuracy {:.2}%",
            c.name,
            c.capacity_bytes() as f64 / 1e6,
            c.accuracy * 100.0
        );
    }

    // 3. Offline stage (Algorithm 1): map representations onto HW-1.
    let platforms = vec![
        Platform::cpu().with_dram_cap(32_000_000_000),
        Platform::gpu(),
    ];
    let mappings = plan(&candidates, &platforms)?;
    println!("\nplanned mappings:");
    for m in &mappings.mappings {
        println!(
            "  {:20} latency(q=128) = {:>8.0} us",
            m.label(&mappings.platforms),
            m.profile.latency_us(128)
        );
    }

    // 4. Online stage (Algorithm 2): serve 2000 queries at 1000 QPS with a
    //    10 ms SLA, MP-Rec vs. the static baseline.
    let cfg = ServingConfig {
        trace: QueryTraceConfig {
            num_queries: 2000,
            ..QueryTraceConfig::default()
        },
        ..ServingConfig::default()
    };
    let baseline = simulate(
        &mappings,
        Policy::Static {
            role: RepRole::Table,
            platform_idx: 0,
        },
        &cfg,
    );
    let mprec_run = simulate(&mappings, Policy::MpRec, &cfg);

    println!("\n{:22} {:>14} {:>12} {:>10}", "policy", "correct/s", "accuracy", "p99 (ms)");
    for o in [&baseline, &mprec_run] {
        println!(
            "{:22} {:>14.0} {:>11.2}% {:>10.2}",
            o.policy,
            o.correct_sps(),
            o.effective_accuracy() * 100.0,
            o.p99_latency_us / 1000.0
        );
    }
    println!(
        "\nMP-Rec improvement: {:.2}x correct-prediction throughput",
        mprec_run.correct_sps() / baseline.correct_sps()
    );
    Ok(())
}
