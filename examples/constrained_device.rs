//! Memory-constrained deployment (paper HW-2, Table 4): a node with just
//! 1 GB of CPU DRAM and a 200 MB GPU cannot host the 2.16 GB embedding
//! tables at all — MP-Rec's offline stage falls back to DHE paths, keeping
//! the node servable and *more* accurate than the table baseline would be.
//!
//! Run with: `cargo run --release --example constrained_device`

use mprec::core::candidates::{default_accuracy_book, paper_candidates};
use mprec::core::planner::plan;
use mprec::data::DatasetSpec;
use mprec::hwsim::Platform;
use mprec::serving::{simulate, Policy, ServingConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = DatasetSpec::kaggle_sim(100);
    let candidates = paper_candidates(&spec, &default_accuracy_book(&spec));

    // HW-2: tiny memory budgets (paper §5.1).
    let platforms = vec![
        Platform::cpu().with_dram_cap(1_000_000_000),
        Platform::gpu().with_dram_cap(200_000_000),
    ];
    println!("HW-2: CPU 1 GB DRAM, GPU 200 MB HBM");
    let mappings = plan(&candidates, &platforms)?;
    println!("\nfeasible mappings under the constrained budgets:");
    for m in &mappings.mappings {
        println!(
            "  {:24} capacity {:>7.0} MB",
            m.label(&mappings.platforms),
            m.rep.capacity_bytes() as f64 / 1e6
        );
    }
    println!(
        "\nper-platform MP-Rec footprint: CPU {:.0} MB, GPU {:.0} MB (Table 4)",
        mappings.footprint_bytes(0) as f64 / 1e6,
        mappings.footprint_bytes(1) as f64 / 1e6,
    );
    let best = mappings.best_accuracy().expect("non-empty");
    println!(
        "achievable accuracy: {:.2}% via {}",
        best.rep.accuracy * 100.0,
        best.label(&mappings.platforms)
    );

    // Serve the standard trace on what fits.
    let o = simulate(&mappings, Policy::MpRec, &ServingConfig::default());
    println!(
        "\nMP-Rec on HW-2: {:.0} correct predictions/s at {:.2}% effective accuracy",
        o.correct_sps(),
        o.effective_accuracy() * 100.0
    );
    println!("(the table baseline does not fit on this node at all)");
    Ok(())
}
