//! Elastic scale-out cluster serving with `mprec-runtime::cluster`:
//! the sparse feature space is consistent-hash-sharded across 4
//! simulated nodes (each with its own worker, model replica, and
//! MP-Cache state), a front-end scatters every micro-batch to the
//! *pruned* target set of its routed path, the nodes compute partial
//! pooled embeddings, and a merger gathers them through the top MLP.
//! Runs two traffic scenarios — steady Poisson and hot-key drift —
//! printing the shard layout, per-node cache hit rates (drift visibly
//! cools the caches; a node owning only replicated table-half features
//! may idle entirely — that's shard pruning), and the slowest-shard
//! critical path the router SLA-routes on. A final run schedules node
//! churn (one failure + one join mid-trace) and prints the per-epoch
//! hit rates: the post-rebalance dip and its recovery.
//!
//! Run with: `cargo run --release --example cluster_serving`

use mprec::data::query::QueryTraceConfig;
use mprec::data::scenario::LoadScenario;
use mprec::runtime::{Cluster, ClusterConfig, PathKind, RuntimeModelConfig};

fn cfg(scenario: LoadScenario) -> ClusterConfig {
    ClusterConfig {
        nodes: 4,
        workers_per_node: 1,
        trace: QueryTraceConfig {
            num_queries: 4_000,
            qps: 2_000.0,
            mean_size: 16.0,
            max_size: 256,
            ..QueryTraceConfig::default()
        },
        scenario,
        model: RuntimeModelConfig {
            rows_per_feature: 10_000,
            profile_accesses: 10_000,
            ..RuntimeModelConfig::default()
        },
        ..ClusterConfig::default()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (label, scenario) in [
        ("steady poisson", LoadScenario::SteadyPoisson),
        ("hot-key drift", LoadScenario::HotKeyDrift { epochs: 8 }),
    ] {
        let cluster = Cluster::new(cfg(scenario))?;
        if scenario == LoadScenario::SteadyPoisson {
            println!("== shard layout (consistent hash, 4 nodes) ==");
            for &n in cluster.plan().nodes() {
                println!(
                    "node {n}: features {:?}",
                    cluster.plan().features_of(n)
                );
            }
            let dhe = cluster
                .paths()
                .iter()
                .position(|&p| p == PathKind::Dhe)
                .expect("dhe path");
            println!(
                "dhe critical path @4K samples: {:.0} us (slowest shard + merge)\n",
                cluster.mapping_set().mappings[dhe].profile.latency_us(4096)
            );
        }
        let report = cluster.serve()?;
        let o = &report.outcome;
        println!("== {label}: {} ==", o.policy);
        println!("completed queries    : {}", o.completed);
        println!("samples/s            : {:.0}", o.raw_sps());
        println!(
            "latency p50/p99      : {:.2} / {:.2} ms",
            report.histogram.quantile_us(0.50) / 1000.0,
            o.p99_latency_us / 1000.0
        );
        println!(
            "virtual SLA viol.    : {:.2} %",
            100.0 * report.virtual_sla_violations as f64 / o.completed.max(1) as f64
        );
        for (n, stats) in report.per_node_cache.iter().enumerate() {
            println!(
                "node {n} cache hit rate: {:.1} % ({} features, {} batches)",
                100.0 * stats.encoder_hit_rate(),
                report.per_node_features[n],
                report.per_node_batches[n]
            );
        }
        println!(
            "merged cache hit rate: {:.1} %\n",
            100.0 * report.cache.encoder_hit_rate()
        );
    }

    // Elasticity: fail node 3 at 40% of the trace, admit a cold node 4
    // at 70%, and watch the rebalanced shards dip and re-warm.
    let mut elastic = Cluster::new(cfg(LoadScenario::SteadyPoisson))?;
    let span = mprec::data::scenario::nominal_span_us(4_000, 2_000.0);
    elastic.fail_node(3, 0.4 * span)?;
    elastic.add_node(4, 0.7 * span)?;
    let report = elastic.serve()?;
    println!("== node churn: fail node 3 @40%, join node 4 @70% ==");
    println!(
        "completed queries    : {} ({} batches retried after the failure)",
        report.outcome.completed, report.retried_batches
    );
    for (i, epoch) in report.epochs.iter().enumerate() {
        println!(
            "epoch {i} (t={:>7.0} us, live {:?}): hit rate {:.1} % over {} batches",
            epoch.start_us,
            epoch.live,
            100.0 * epoch.hit_rate(),
            epoch.batches
        );
    }
    Ok(())
}
