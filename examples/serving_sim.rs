//! Serving-policy shoot-out (paper Fig. 10/15): replays the paper's query
//! workload (10K queries, lognormal sizes, 1000 QPS, 10 ms SLA) against
//! every deployment policy on the HW-1 CPU-GPU node and prints throughput
//! of correct predictions, SLA violations and the path-activation
//! breakdown.
//!
//! Run with: `cargo run --release --example serving_sim`

use mprec::core::candidates::{default_accuracy_book, paper_candidates, RepRole};
use mprec::core::planner::plan;
use mprec::data::DatasetSpec;
use mprec::hwsim::Platform;
use mprec::serving::{simulate, Policy, ServingConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = DatasetSpec::kaggle_sim(100);
    let candidates = paper_candidates(&spec, &default_accuracy_book(&spec));
    let platforms = vec![
        Platform::cpu().with_dram_cap(32_000_000_000),
        Platform::gpu(),
    ];
    let mappings = plan(&candidates, &platforms)?;
    let cfg = ServingConfig::default(); // 10K queries, 1000 QPS, 10 ms SLA

    let policies = vec![
        Policy::Static {
            role: RepRole::Table,
            platform_idx: 0,
        },
        Policy::Static {
            role: RepRole::Table,
            platform_idx: 1,
        },
        Policy::TableSwitching,
        Policy::Static {
            role: RepRole::Dhe,
            platform_idx: 1,
        },
        Policy::Static {
            role: RepRole::Hybrid,
            platform_idx: 1,
        },
        Policy::MpRec,
    ];

    println!(
        "{:22} {:>12} {:>10} {:>10} {:>10}",
        "policy", "correct/s", "accuracy", "viol %", "p99 ms"
    );
    let mut baseline = None;
    for p in policies {
        let o = simulate(&mappings, p, &cfg);
        if baseline.is_none() {
            baseline = Some(o.correct_sps());
        }
        println!(
            "{:22} {:>12.0} {:>9.2}% {:>9.1}% {:>10.1}",
            o.policy,
            o.correct_sps(),
            o.effective_accuracy() * 100.0,
            o.sla_violation_rate() * 100.0,
            o.p99_latency_us / 1000.0
        );
        if p == Policy::MpRec {
            println!("\npath-activation breakdown (Fig. 15):");
            for (label, n) in &o.usage.queries {
                println!(
                    "  {:20} {:>6} queries ({:>5.1}%)",
                    label,
                    n,
                    o.usage.query_fraction(label) * 100.0
                );
            }
            println!(
                "\nMP-Rec vs TBL(CPU): {:.2}x correct-prediction throughput",
                o.correct_sps() / baseline.unwrap()
            );
        }
    }
    Ok(())
}
