//! Distribution types (`Uniform`, the `Distribution` trait).

use crate::{RngCore, SampleRange, Standard};

/// Types that can produce values of `T` when driven by an RNG.
pub trait Distribution<T> {
    /// Draws one value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform distribution over an interval.
#[derive(Clone, Copy, Debug)]
pub struct Uniform<T> {
    low: T,
    high: T,
    inclusive: bool,
}

impl<T: Copy + PartialOrd> Uniform<T> {
    /// Uniform over the half-open interval `[low, high)`.
    pub fn new(low: T, high: T) -> Self {
        assert!(low < high, "Uniform::new: empty range");
        Uniform { low, high, inclusive: false }
    }

    /// Uniform over the closed interval `[low, high]`.
    pub fn new_inclusive(low: T, high: T) -> Self {
        assert!(low <= high, "Uniform::new_inclusive: empty range");
        Uniform { low, high, inclusive: true }
    }
}

macro_rules! uniform_float {
    ($($t:ty),+) => {$(
        impl Distribution<$t> for Uniform<$t> {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                // For floats the closed/open distinction is a single
                // representable value; sample the half-open interval and, in
                // the inclusive case, the top value is unreachable but the
                // distribution is indistinguishable for simulation purposes.
                let u = <$t as Standard>::sample_standard(&mut &mut *rng);
                let v = self.low + u * (self.high - self.low);
                if !self.inclusive && v >= self.high {
                    self.high.next_down()
                } else {
                    v
                }
            }
        }
    )+};
}

uniform_float!(f32, f64);

macro_rules! uniform_int {
    ($($t:ty),+) => {$(
        impl Distribution<$t> for Uniform<$t> {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                if self.inclusive {
                    (self.low..=self.high).sample_single(&mut &mut *rng)
                } else {
                    (self.low..self.high).sample_single(&mut &mut *rng)
                }
            }
        }
    )+};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn uniform_float_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Uniform::new_inclusive(-0.25f32, 0.25);
        for _ in 0..10_000 {
            let v = d.sample(&mut rng);
            assert!((-0.25..=0.25).contains(&v));
        }
    }

    #[test]
    fn uniform_int_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = Uniform::new(10u64, 20);
        for _ in 0..10_000 {
            let v = d.sample(&mut rng);
            assert!((10..20).contains(&v));
        }
    }
}
