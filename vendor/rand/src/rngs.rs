//! Concrete RNG implementations.

use crate::{RngCore, SeedableRng};

/// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
///
/// Not cryptographically secure — it exists to give the workspace fast,
/// reproducible streams for simulation and initialization.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // xoshiro enters a fixed point at the all-zero state; remix through
        // SplitMix64 so even a zero seed yields a usable stream.
        if s == [0, 0, 0, 0] {
            let mut state = 0x0005_DEEC_E66D_u64;
            for word in s.iter_mut() {
                *word = crate::splitmix64(&mut state);
            }
        }
        StdRng { s }
    }
}
