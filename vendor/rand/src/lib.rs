//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! workspace vendors the narrow slice of `rand` it actually uses: the
//! [`Rng`] / [`RngCore`] / [`SeedableRng`] traits, uniform `gen` /
//! `gen_range` sampling for the primitive types the workspace touches, and a
//! deterministic [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64).
//!
//! The statistical contract the workspace relies on — uniform floats in
//! `[0, 1)` with 53/24 bits of precision, uniform integers in a half-open
//! range, reproducible streams from `seed_from_u64` — is honoured; the
//! exact output streams differ from upstream `rand`, which no seed test in
//! this repository depends on (they assert run-to-run determinism, not
//! specific draws).

pub mod distributions;
pub mod rngs;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform `[0, 1)` for floats, uniform over all values for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 significant bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 24 significant bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($t:ty) => {
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = self.start + u * (self.end - self.start);
                // Guard against floating-point rounding landing exactly on
                // the excluded upper bound.
                if v >= self.end {
                    self.end.next_down()
                } else {
                    v
                }
            }
        }
    };
}

float_range!(f32);
float_range!(f64);

macro_rules! int_range {
    ($t:ty) => {
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening-multiply rejection-free mapping; the bias is
                // < 2^-64 and irrelevant for simulation workloads.
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    };
}

int_range!(u8);
int_range!(u16);
int_range!(u32);
int_range!(u64);
int_range!(usize);
int_range!(i8);
int_range!(i16);
int_range!(i32);
int_range!(i64);
int_range!(isize);

/// RNGs constructible from a seed, with the `seed_from_u64` convenience.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the RNG from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (the same scheme
    /// upstream `rand` uses) and builds the RNG from it.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_from_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn floats_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let v = rng.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&v));
            let k = rng.gen_range(3u64..17);
            assert!((3..17).contains(&k));
            let j = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&j));
        }
    }
}
