//! Vendored no-op stand-in for `serde`'s derive macros.
//!
//! The workspace annotates config and result structs with
//! `#[derive(Serialize, Deserialize)]` so they are ready for wire formats,
//! but nothing in-tree serializes yet and the build environment has no
//! crates.io access. These derives accept the same syntax (including
//! `#[serde(...)]` field attributes) and expand to nothing, keeping the
//! annotations compiling until a real serde can be plugged in via
//! `[patch]` or a dependency swap.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
