//! Vendored micro-benchmark harness exposing the slice of the `criterion`
//! API the workspace's `benches/` use: `Criterion::default()` with the
//! builder knobs, `bench_function`, `Bencher::iter` / `iter_batched`,
//! `BatchSize`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is a simple warm-up phase followed by timed batches; it
//! reports mean ns/iter (with min/max over batches) to stdout. No HTML
//! reports, statistics, or regression detection — the workspace's
//! figure-generating binaries do their own measurement; this harness exists
//! so `cargo bench` runs offline and exercises the hot kernels.

use std::time::{Duration, Instant};

/// Returns its argument, opaque to the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Hint for how expensive `iter_batched` setup values are to hold.
/// This harness treats every variant as per-batch setup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine inputs; batches may be large.
    SmallInput,
    /// Large routine inputs; batches are kept small.
    LargeInput,
    /// One setup per routine invocation.
    PerIteration,
}

/// Benchmark driver configured builder-style, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets how many timed batches each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total time budget for the timed batches.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the untimed warm-up duration preceding measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up_time,
            budget: self.measurement_time,
            samples: self.sample_size,
            batch_ns: Vec::new(),
            iters_per_batch: 0,
        };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    budget: Duration,
    samples: usize,
    batch_ns: Vec<f64>,
    iters_per_batch: u64,
}

impl Bencher {
    /// Measures `routine` called in a tight loop.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm up and size batches so one batch is ~1/samples of the budget.
        let warm_deadline = Instant::now() + self.warm_up;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warm_deadline {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let batch_budget = self.budget.as_secs_f64() / self.samples as f64;
        let iters = ((batch_budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        self.iters_per_batch = iters;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
            self.batch_ns.push(ns);
        }
    }

    /// Measures `routine` on fresh inputs built by `setup`; only the routine
    /// is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            let input = setup();
            black_box(routine(input));
        }
        // Time routine invocations individually, excluding setup.
        let deadline = Instant::now() + self.budget;
        let mut total_ns = 0.0f64;
        let mut count: u64 = 0;
        let mut min_ns = f64::INFINITY;
        let mut max_ns = 0.0f64;
        while Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let ns = start.elapsed().as_secs_f64() * 1e9;
            total_ns += ns;
            count += 1;
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
        }
        if count > 0 {
            self.iters_per_batch = 1;
            self.batch_ns = vec![min_ns, total_ns / count as f64, max_ns];
        }
    }

    fn report(&self, id: &str) {
        if self.batch_ns.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let mean = self.batch_ns.iter().sum::<f64>() / self.batch_ns.len() as f64;
        let min = self.batch_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.batch_ns.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{id:<40} time: [{} {} {}]",
            format_ns(min),
            format_ns(mean),
            format_ns(max)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a named group of benchmark functions, optionally with a custom
/// `Criterion` configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main`, running each benchmark group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
