//! Vendored shim exposing the `parking_lot` locking API on top of
//! `std::sync`.
//!
//! The workspace builds offline, so this crate provides the two properties
//! callers actually rely on — `lock()` without a poison `Result`, and `const`
//! construction — while delegating the real synchronization to the standard
//! library. Poisoned locks are recovered transparently, matching
//! `parking_lot`'s "no poisoning" semantics closely enough for the cache
//! statistics this workspace guards with it.

use std::sync::PoisonError;

pub use std::sync::MutexGuard;
pub use std::sync::RwLockReadGuard;
pub use std::sync::RwLockWriteGuard;

/// Mutex with `parking_lot`'s panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning instead of returning an
    /// error (parking_lot mutexes cannot be poisoned).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with `parking_lot`'s panic-free signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
