//! Vendored shim exposing the `parking_lot` locking API on top of
//! `std::sync`.
//!
//! The workspace builds offline, so this crate provides the properties
//! callers actually rely on — `lock()` without a poison `Result`, `const`
//! construction, and `Condvar::wait` taking `&mut MutexGuard` — while
//! delegating the real synchronization to the standard library. Poisoned
//! locks are recovered transparently, matching `parking_lot`'s
//! "no poisoning" semantics closely enough for the cache statistics and
//! serving-runtime queues this workspace guards with it.
//!
//! ## Supported API surface
//!
//! * [`Mutex`]: `new` (const), `lock`, `try_lock`, `get_mut`, `into_inner`.
//! * [`RwLock`]: `new` (const), `read`, `write`, `into_inner`.
//! * [`Condvar`]: `new` (const), `wait`, `wait_for`, `notify_one`,
//!   `notify_all` (added for `mprec-runtime`'s bounded MPMC work queue).
//!
//! To make `Condvar::wait(&mut MutexGuard)` implementable without
//! `unsafe`, [`MutexGuard`] is a thin newtype over
//! `Option<std::sync::MutexGuard>` (always `Some` outside `wait`
//! internals) instead of a re-export; it derefs to the protected value
//! exactly like the real crate's guard. Swapping in the real
//! `parking_lot` remains a one-line change in `[workspace.dependencies]`.

use std::sync::PoisonError;
use std::time::Duration;

pub use std::sync::RwLockReadGuard;
pub use std::sync::RwLockWriteGuard;

/// Mutex with `parking_lot`'s panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Wraps the std guard in an `Option` so [`Condvar::wait`] can move the
/// guard through `std::sync::Condvar::wait` by value and put it back —
/// the only way to offer parking_lot's `&mut` wait signature without
/// `unsafe` (which this workspace denies).
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside Condvar::wait")
    }
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning instead of returning an
    /// error (parking_lot mutexes cannot be poisoned).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        ))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard(Some(guard))),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard(Some(p.into_inner())))
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with `parking_lot`'s panic-free signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Result of a [`Condvar::wait_for`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed (rather than a
    /// notification).
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable with `parking_lot`'s `&mut MutexGuard` signatures.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Blocks until notified, releasing `guard`'s mutex while waiting and
    /// re-acquiring it before returning (spurious wakeups possible).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present before wait");
        guard.0 = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present before wait");
        let (inner, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_hands_off_between_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            *ready = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        assert!(*ready);
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out_without_notification() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
