//! Vendored mini property-testing harness exposing the subset of the
//! `proptest` macro surface this workspace uses.
//!
//! Supported: the `proptest! { ... }` block form with an optional
//! `#![proptest_config(...)]` header, `name in strategy` arguments where
//! strategies are numeric ranges, tuples of strategies,
//! `prop::collection::vec`, and `any::<T>()`; plus `prop_assert!`,
//! `prop_assert_eq!`, and `prop_assume!`.
//!
//! Unlike upstream proptest there is no shrinking: a failing case panics
//! immediately with the generated inputs formatted into the message, which
//! is enough to reproduce (generation is deterministic per test name). Case
//! counts honour `ProptestConfig::with_cases`.

pub mod collection;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Runner configuration; only `cases` is honoured by this harness.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 48 keeps the planner-heavy properties in
        // this workspace fast while still sweeping the input space.
        ProptestConfig { cases: 48 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was filtered out by `prop_assume!`; it does not count.
    Reject(String),
    /// An assertion failed; the test panics with this message.
    Fail(String),
}

/// Result type the generated test bodies return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic RNG driving value generation for one property.
pub struct TestRng(StdRng);

impl TestRng {
    /// Derives a per-test RNG from the property's name so failures
    /// reproduce across runs.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Source of generated values for one macro argument.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                rng.gen_range(lo..=hi)
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3)
);

/// Strategy wrapping a constant value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types generatable by [`any`].
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning several orders of magnitude.
        (rng.gen::<f32>() - 0.5) * 2.0e6
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.gen::<f64>() - 0.5) * 2.0e12
    }
}

/// Strategy producing arbitrary values of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns a strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Everything the `proptest!` call sites import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// Namespace mirror of upstream's `prelude::prop` module.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            #[test]
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut passed = 0u32;
                let mut attempts = 0u32;
                let max_attempts = cfg.cases.saturating_mul(16).saturating_add(256);
                while passed < cfg.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest '{}': too many rejected cases ({} attempts for {} passes)",
                        stringify!($name), attempts, passed
                    );
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: $crate::TestCaseResult =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed after {} passing case(s): {}\n  inputs: {}",
                                stringify!($name), passed, msg, inputs
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case (without panicking the generator loop directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({:?} != {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({:?} != {:?}): {}",
                stringify!($left),
                stringify!($right),
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Rejects the current case (it is regenerated and does not count).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..10, f in 0.5f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_strategy_obeys_size(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for e in &v {
                prop_assert!(*e < 5);
            }
        }

        #[test]
        fn tuples_and_assume(pair in (1u64..100, 0.0f32..1.0)) {
            prop_assume!(pair.0 != 50);
            prop_assert_eq!(pair.0, pair.0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest 'always_fails' failed")]
    #[allow(unnameable_test_items)]
    fn failure_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[test]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
