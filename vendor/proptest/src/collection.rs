//! Collection strategies (`prop::collection::vec`).

use crate::{Strategy, TestRng};
use rand::Rng;

/// Inclusive-exclusive length bounds for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo + 1 {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange { lo: len, hi: len + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Strategy generating `Vec`s of values drawn from an element strategy.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Returns a strategy producing vectors whose length falls in `size` and
/// whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
